#include "core/single_source.h"

#include <gtest/gtest.h>

#include "core/mc_simrank.h"
#include "datasets/amazon_gen.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

class SingleSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MakeSmallWorld();
    WalkIndexOptions opt;
    opt.num_walks = 200;
    opt.walk_length = 12;
    opt.seed = 9;
    index_ = WalkIndex::Build(world_.graph, opt);
    inverted_ = SingleSourceIndex::Build(index_, world_.graph.num_nodes());
  }

  testutil::SmallWorld world_;
  WalkIndex index_;
  SingleSourceIndex inverted_;
};

TEST_F(SingleSourceTest, FirstMeetingsMatchPairwiseScan) {
  for (NodeId u = 0; u < world_.graph.num_nodes(); ++u) {
    // Collect per-(v, walk) meetings from the inverted index.
    std::vector<std::vector<int>> inverted_meet(
        world_.graph.num_nodes(),
        std::vector<int>(index_.num_walks(), -1));
    for (const auto& m : inverted_.FirstMeetings(u)) {
      inverted_meet[m.node][m.walk] = m.step;
    }
    for (NodeId v = 0; v < world_.graph.num_nodes(); ++v) {
      if (v == u) continue;
      for (int w = 0; w < index_.num_walks(); ++w) {
        ASSERT_EQ(inverted_meet[v][w], FirstMeetingStep(index_, u, v, w))
            << "u=" << u << " v=" << v << " walk=" << w;
      }
    }
  }
}

TEST_F(SingleSourceTest, SimRankFromMatchesPairQueries) {
  for (NodeId u = 0; u < world_.graph.num_nodes(); ++u) {
    std::vector<double> scores = inverted_.SimRankFrom(u, 0.6);
    ASSERT_EQ(scores.size(), world_.graph.num_nodes());
    for (NodeId v = 0; v < world_.graph.num_nodes(); ++v) {
      EXPECT_NEAR(scores[v], McSimRankQuery(index_, u, v, 0.6), 1e-12)
          << "u=" << u << " v=" << v;
    }
  }
}

TEST_F(SingleSourceTest, SemSimFromMatchesPairQueries) {
  LinMeasure lin(&world_.context);
  SemSimMcEstimator estimator(&world_.graph, &lin, &index_);
  for (double theta : {0.0, 0.05}) {
    SemSimMcOptions opt{0.6, theta};
    for (NodeId u = 0; u < world_.graph.num_nodes(); ++u) {
      std::vector<double> scores = inverted_.SemSimFrom(u, estimator, opt);
      for (NodeId v = 0; v < world_.graph.num_nodes(); ++v) {
        EXPECT_NEAR(scores[v], estimator.Query(u, v, opt), 1e-10)
            << "theta=" << theta << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST_F(SingleSourceTest, TopKMatchesMcTopK) {
  LinMeasure lin(&world_.context);
  SemSimMcEstimator estimator(&world_.graph, &lin, &index_);
  SemSimMcOptions opt{0.6, 0.0};
  auto fast = inverted_.TopKFrom(world_.a0, 4, estimator, opt);
  auto slow = McTopK(estimator, world_.a0, 4, opt);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].node, slow[i].node) << "rank " << i;
    EXPECT_NEAR(fast[i].score, slow[i].score, 1e-10);
  }
}

TEST_F(SingleSourceTest, MemoryIsReported) {
  EXPECT_GT(inverted_.MemoryBytes(), 0u);
}

TEST_F(SingleSourceTest, ParallelBuildIsBitIdenticalAcrossThreadCounts) {
  // The inverted index must not depend on how construction was
  // partitioned: 1, 2, and 8 threads (more threads than partitions on
  // the 8-node world) all reproduce the serial structure byte for byte.
  uint64_t serial = inverted_.Fingerprint();
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    SingleSourceIndex parallel =
        SingleSourceIndex::Build(index_, world_.graph.num_nodes(), &pool);
    EXPECT_EQ(parallel.Fingerprint(), serial) << "threads=" << threads;
    EXPECT_EQ(parallel.MemoryBytes(), inverted_.MemoryBytes());
  }
}

TEST_F(SingleSourceTest, ScratchSweepsAreBitIdenticalToFreshAllocation) {
  LinMeasure lin(&world_.context);
  SemSimMcEstimator estimator(&world_.graph, &lin, &index_);
  QueryScratch scratch;
  std::vector<double> out;
  for (double theta : {0.0, 0.05}) {
    SemSimMcOptions opt{0.6, theta};
    // One scratch reused across every source and both thetas — epoch
    // stamping must fully isolate the queries.
    for (NodeId u = 0; u < world_.graph.num_nodes(); ++u) {
      McQueryStats fresh_stats, scratch_stats;
      std::vector<double> fresh =
          inverted_.SemSimFrom(u, estimator, opt, &fresh_stats);
      inverted_.SemSimFromInto(u, estimator, opt, scratch, out,
                               &scratch_stats);
      ASSERT_EQ(out.size(), fresh.size());
      for (NodeId v = 0; v < world_.graph.num_nodes(); ++v) {
        ASSERT_EQ(out[v], fresh[v])  // bit-identical, not just near
            << "theta=" << theta << " u=" << u << " v=" << v;
      }
      EXPECT_EQ(scratch_stats.met_walks, fresh_stats.met_walks);
      EXPECT_EQ(scratch_stats.sem_pruned_queries,
                fresh_stats.sem_pruned_queries);
      EXPECT_EQ(scratch_stats.normalizers_computed,
                fresh_stats.normalizers_computed);
    }
  }
}

TEST_F(SingleSourceTest, ScratchTopKMatchesPlainTopK) {
  LinMeasure lin(&world_.context);
  SemSimMcEstimator estimator(&world_.graph, &lin, &index_);
  SemSimMcOptions opt{0.6, 0.05};
  QueryScratch scratch;
  for (NodeId u = 0; u < world_.graph.num_nodes(); ++u) {
    auto plain = inverted_.TopKFrom(u, 4, estimator, opt);
    auto pooled = inverted_.TopKFrom(u, 4, estimator, opt, scratch);
    ASSERT_EQ(plain.size(), pooled.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].node, pooled[i].node) << "u=" << u << " rank " << i;
      EXPECT_EQ(plain[i].score, pooled[i].score);
    }
  }
}

TEST_F(SingleSourceTest, ScratchPoolLeasesAndReuses) {
  ScratchPool pool;
  {
    ScratchPool::Lease a = pool.Acquire();
    ScratchPool::Lease b = pool.Acquire();
    ASSERT_NE(a.get(), nullptr);
    ASSERT_NE(b.get(), nullptr);
    ASSERT_NE(a.get(), b.get());
  }
  QueryScratch* first = nullptr;
  {
    ScratchPool::Lease c = pool.Acquire();
    first = c.get();
  }
  ScratchPool::Lease d = pool.Acquire();
  EXPECT_EQ(d.get(), first);  // freelist reuse, most-recently-returned
  EXPECT_EQ(pool.acquired(), 4u);
  EXPECT_EQ(pool.reused(), 2u);
  EXPECT_DOUBLE_EQ(pool.reuse_rate(), 0.5);
}

TEST(SingleSourceGenerated, ParallelBuildMatchesSerialOnLargerGraph) {
  AmazonOptions gen;
  gen.num_items = 200;
  gen.seed = 31;
  Dataset d = Unwrap(GenerateAmazon(gen));
  WalkIndexOptions wopt;
  wopt.num_walks = 60;
  wopt.walk_length = 10;
  WalkIndex index = WalkIndex::Build(d.graph, wopt);
  SingleSourceIndex serial =
      SingleSourceIndex::Build(index, d.graph.num_nodes());
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    SingleSourceIndex parallel =
        SingleSourceIndex::Build(index, d.graph.num_nodes(), &pool);
    ASSERT_EQ(parallel.Fingerprint(), serial.Fingerprint())
        << "threads=" << threads;
  }
}

TEST(SingleSourceGenerated, ConsistentOnLargerGraph) {
  AmazonOptions gen;
  gen.num_items = 150;
  gen.seed = 77;
  Dataset d = Unwrap(GenerateAmazon(gen));
  WalkIndexOptions wopt;
  wopt.num_walks = 80;
  wopt.walk_length = 10;
  WalkIndex index = WalkIndex::Build(d.graph, wopt);
  SingleSourceIndex inverted =
      SingleSourceIndex::Build(index, d.graph.num_nodes());
  LinMeasure lin(&d.context);
  SemSimMcEstimator est(&d.graph, &lin, &index);
  SemSimMcOptions opt{0.6, 0.05};
  Rng rng(5);
  for (int q = 0; q < 10; ++q) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(d.graph.num_nodes()));
    std::vector<double> scores = inverted.SemSimFrom(u, est, opt);
    for (int c = 0; c < 30; ++c) {
      NodeId v = static_cast<NodeId>(rng.NextIndex(d.graph.num_nodes()));
      ASSERT_NEAR(scores[v], est.Query(u, v, opt), 1e-10);
    }
  }
}

}  // namespace
}  // namespace semsim

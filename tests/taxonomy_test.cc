#include "taxonomy/taxonomy.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

TEST(TaxonomyBuilder, SimpleTree) {
  TaxonomyBuilder b;
  ConceptId root = b.AddConcept("root");
  ConceptId a = b.AddConcept("a", root);
  ConceptId b1 = b.AddConcept("b", root);
  ConceptId a1 = b.AddConcept("a1", a);
  ConceptId a2 = b.AddConcept("a2", a);
  Taxonomy t = Unwrap(std::move(b).Build());

  EXPECT_EQ(t.num_concepts(), 5u);
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.parent(a1), a);
  EXPECT_EQ(t.depth(root), 0u);
  EXPECT_EQ(t.depth(a), 1u);
  EXPECT_EQ(t.depth(a2), 2u);
  EXPECT_TRUE(t.IsLeaf(a1));
  EXPECT_FALSE(t.IsLeaf(a));
  EXPECT_EQ(t.SubtreeSize(a), 3u);
  EXPECT_EQ(t.SubtreeSize(root), 5u);
  EXPECT_EQ(t.children(a).size(), 2u);
  EXPECT_EQ(t.children(b1).size(), 0u);
}

TEST(TaxonomyBuilder, MultipleRootsGetSyntheticRoot) {
  TaxonomyBuilder b;
  ConceptId x = b.AddConcept("x");
  ConceptId y = b.AddConcept("y");
  Taxonomy t = Unwrap(std::move(b).Build());
  EXPECT_EQ(t.num_concepts(), 3u);
  EXPECT_EQ(t.name(t.root()), "<ROOT>");
  EXPECT_EQ(t.parent(x), t.root());
  EXPECT_EQ(t.parent(y), t.root());
}

TEST(TaxonomyBuilder, DetectsCycle) {
  TaxonomyBuilder b;
  ConceptId r = b.AddConcept("r");
  ConceptId x = b.AddConcept("x", r);
  ConceptId y = b.AddConcept("y", x);
  ASSERT_TRUE(b.SetParent(x, y).ok());  // creates x -> y -> x
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TaxonomyBuilder, RejectsEmpty) {
  TaxonomyBuilder b;
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TaxonomyBuilder, SetParentValidation) {
  TaxonomyBuilder b;
  ConceptId x = b.AddConcept("x");
  EXPECT_FALSE(b.SetParent(x, x).ok());
  EXPECT_FALSE(b.SetParent(7, x).ok());
  EXPECT_FALSE(b.SetParent(x, 7).ok());
}

TEST(Taxonomy, FindConceptByName) {
  TaxonomyBuilder b;
  b.AddConcept("root");
  Taxonomy t = Unwrap(std::move(b).Build());
  EXPECT_EQ(Unwrap(t.FindConcept("root")), 0u);
  EXPECT_FALSE(t.FindConcept("ghost").ok());
}

TEST(Taxonomy, LcaSlowAndDistance) {
  TaxonomyBuilder b;
  ConceptId root = b.AddConcept("root");
  ConceptId a = b.AddConcept("a", root);
  ConceptId bb = b.AddConcept("b", root);
  ConceptId a1 = b.AddConcept("a1", a);
  ConceptId a2 = b.AddConcept("a2", a);
  ConceptId a11 = b.AddConcept("a11", a1);
  Taxonomy t = Unwrap(std::move(b).Build());

  EXPECT_EQ(t.LcaSlow(a1, a2), a);
  EXPECT_EQ(t.LcaSlow(a11, a2), a);
  EXPECT_EQ(t.LcaSlow(a11, bb), root);
  EXPECT_EQ(t.LcaSlow(a, a11), a);
  EXPECT_EQ(t.LcaSlow(a, a), a);
  EXPECT_EQ(t.TreeDistance(a1, a2), 2u);
  EXPECT_EQ(t.TreeDistance(a11, bb), 4u);
  EXPECT_EQ(t.TreeDistance(a, a), 0u);
}

TEST(Taxonomy, SingleConcept) {
  TaxonomyBuilder b;
  b.AddConcept("only");
  Taxonomy t = Unwrap(std::move(b).Build());
  EXPECT_EQ(t.num_concepts(), 1u);
  EXPECT_EQ(t.SubtreeSize(t.root()), 1u);
  EXPECT_TRUE(t.IsLeaf(t.root()));
}

}  // namespace
}  // namespace semsim

#include <gtest/gtest.h>

#include "datasets/aminer_gen.h"
#include "datasets/amazon_gen.h"
#include "datasets/gen_util.h"
#include "datasets/wikipedia_gen.h"
#include "datasets/wordnet_gen.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

void CheckContextConsistency(const Dataset& d) {
  ASSERT_EQ(d.context.num_nodes(), d.graph.num_nodes());
  LinMeasure lin(&d.context);
  Rng rng(7);
  Status s = ValidateSemanticMeasure(lin, d.graph.num_nodes(), rng, 500);
  EXPECT_TRUE(s.ok()) << d.name << ": " << s.ToString();
}

TEST(AminerGen, ProducesConsistentDataset) {
  AminerOptions opt;
  opt.num_authors = 200;
  opt.num_duplicates = 10;
  opt.seed = 1;
  Dataset d = Unwrap(GenerateAminer(opt));
  EXPECT_GT(d.graph.num_nodes(), 200u);
  EXPECT_GT(d.graph.num_edges(), 400u);
  EXPECT_EQ(d.duplicate_pairs.size(), 10u);
  CheckContextConsistency(d);
  // Duplicate endpoints are distinct author nodes.
  for (const auto& [orig, dup] : d.duplicate_pairs) {
    EXPECT_NE(orig, dup);
    EXPECT_EQ(d.graph.label_name(d.graph.node_label(orig)), "author");
    EXPECT_EQ(d.graph.label_name(d.graph.node_label(dup)), "author");
  }
}

TEST(AminerGen, DeterministicForSeed) {
  AminerOptions opt;
  opt.num_authors = 100;
  opt.seed = 5;
  Dataset a = Unwrap(GenerateAminer(opt));
  Dataset b = Unwrap(GenerateAminer(opt));
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
    auto na = a.graph.InNeighbors(v);
    auto nb = b.graph.InNeighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i].node, nb[i].node);
      ASSERT_DOUBLE_EQ(na[i].weight, nb[i].weight);
    }
  }
}

TEST(AminerGen, AuthorSemanticSimilarityIsUninformative) {
  // The paper observes all AMiner author pairs share sem = IC(Author).
  AminerOptions opt;
  opt.num_authors = 50;
  Dataset d = Unwrap(GenerateAminer(opt));
  LinMeasure lin(&d.context);
  std::vector<NodeId> authors;
  for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
    if (d.graph.label_name(d.graph.node_label(v)) == "author") {
      authors.push_back(v);
    }
  }
  ASSERT_GE(authors.size(), 3u);
  double first = lin.Sim(authors[0], authors[1]);
  for (size_t i = 2; i < std::min<size_t>(authors.size(), 10); ++i) {
    EXPECT_DOUBLE_EQ(lin.Sim(authors[0], authors[i]), first);
  }
}

TEST(AminerGen, ValidatesOptions) {
  AminerOptions opt;
  opt.num_authors = 1;
  EXPECT_FALSE(GenerateAminer(opt).ok());
  opt.num_authors = 10;
  opt.num_duplicates = 10;
  EXPECT_FALSE(GenerateAminer(opt).ok());
}

TEST(AmazonGen, HoldsOutCopurchaseEdges) {
  AmazonOptions opt;
  opt.num_items = 300;
  opt.heldout_fraction = 0.1;
  opt.seed = 2;
  Dataset d = Unwrap(GenerateAmazon(opt));
  CheckContextConsistency(d);
  EXPECT_GT(d.heldout_edges.size(), 10u);
  // Held-out pairs must not be edges in the graph.
  LabelId cp = d.graph.FindLabel("co_purchase");
  ASSERT_NE(cp, kInvalidLabel);
  for (const auto& [a, b] : d.heldout_edges) {
    for (const Neighbor& nb : d.graph.OutNeighbors(a)) {
      EXPECT_FALSE(nb.node == b && nb.edge_label == cp);
    }
  }
}

TEST(AmazonGen, SameCategoryItemsAreSemanticallyCloser) {
  AmazonOptions opt;
  opt.num_items = 200;
  Dataset d = Unwrap(GenerateAmazon(opt));
  LinMeasure lin(&d.context);
  // Find two items in the same category and one in another.
  const Taxonomy& tax = d.context.taxonomy();
  NodeId same_a = kInvalidNode, same_b = kInvalidNode, other = kInvalidNode;
  for (NodeId u = 0; u < d.graph.num_nodes() && other == kInvalidNode; ++u) {
    if (d.graph.label_name(d.graph.node_label(u)) != "item") continue;
    for (NodeId v = u + 1; v < d.graph.num_nodes(); ++v) {
      if (d.graph.label_name(d.graph.node_label(v)) != "item") continue;
      ConceptId cu = d.context.concept_of(u);
      ConceptId cv = d.context.concept_of(v);
      if (tax.parent(cu) == tax.parent(cv)) {
        same_a = u;
        same_b = v;
      } else if (same_a != kInvalidNode) {
        other = v;
        break;
      }
    }
  }
  ASSERT_NE(same_a, kInvalidNode);
  ASSERT_NE(other, kInvalidNode);
  EXPECT_GT(lin.Sim(same_a, same_b), lin.Sim(same_a, other));
}

TEST(WikipediaGen, ProducesRelatednessBenchmark) {
  WikipediaOptions opt;
  opt.num_articles = 200;
  opt.relatedness_pairs = 60;
  Dataset d = Unwrap(GenerateWikipedia(opt));
  CheckContextConsistency(d);
  EXPECT_EQ(d.relatedness.size(), 60u);
  for (const RelatednessPair& p : d.relatedness) {
    EXPECT_NE(p.a, p.b);
    EXPECT_GE(p.human_score, 0.0);
    EXPECT_LE(p.human_score, 1.0);
  }
  // Scores should span a nontrivial range.
  double lo = 1, hi = 0;
  for (const RelatednessPair& p : d.relatedness) {
    lo = std::min(lo, p.human_score);
    hi = std::max(hi, p.human_score);
  }
  EXPECT_GT(hi - lo, 0.2);
}

TEST(WordnetGen, DeepTaxonomyWithPartOf) {
  WordnetOptions opt;
  Dataset d = Unwrap(GenerateWordnet(opt));
  CheckContextConsistency(d);
  EXPECT_NE(d.graph.FindLabel("part_of"), kInvalidLabel);
  EXPECT_NE(d.graph.FindLabel("is_a"), kInvalidLabel);
  EXPECT_EQ(d.relatedness.size(), 342u);
  // Random recursive tree: expected depth ~ ln(n); branching must be
  // irregular (some concept has 3+ children).
  uint32_t max_depth = 0;
  size_t max_children = 0;
  const Taxonomy& t = d.context.taxonomy();
  for (ConceptId c = 0; c < t.num_concepts(); ++c) {
    max_depth = std::max(max_depth, t.depth(c));
    max_children = std::max(max_children, t.children(c).size());
  }
  EXPECT_GE(max_depth, 4u);
  EXPECT_LE(max_depth, 30u);
  EXPECT_GE(max_children, 3u);
}

TEST(GenUtil, BalancedTreeShape) {
  TaxonomyBuilder b;
  std::vector<ConceptId> leaves;
  BuildBalancedTree(&b, "x", {3, 2}, &leaves);
  Taxonomy t = Unwrap(std::move(b).Build());
  EXPECT_EQ(leaves.size(), 6u);
  EXPECT_EQ(t.num_concepts(), 1u + 3u + 6u);
  for (ConceptId leaf : leaves) EXPECT_EQ(t.depth(leaf), 2u);
}

TEST(GenUtil, StructuralProximity) {
  auto w = testutil::MakeSmallWorld();
  Hin sym = w.graph.Symmetrized();
  EXPECT_DOUBLE_EQ(StructuralProximity(sym, w.a0, w.a0, 4), 1.0);
  // 1 hop: decay^1.
  EXPECT_DOUBLE_EQ(StructuralProximity(sym, w.a0, w.a1, 4, 0.55), 0.55);
  EXPECT_GT(StructuralProximity(sym, w.a0, w.b1, 6), 0.0);
  // Unreachable within 0 hops.
  EXPECT_DOUBLE_EQ(StructuralProximity(sym, w.a0, w.b1, 0), 0.0);
}

TEST(GenUtil, ShortestPathHops) {
  auto w = testutil::MakeSmallWorld();
  Hin sym = w.graph.Symmetrized();
  EXPECT_EQ(ShortestPathHops(sym, w.a0, w.a0, 4), 0);
  EXPECT_EQ(ShortestPathHops(sym, w.a0, w.a1, 4), 1);
  EXPECT_EQ(ShortestPathHops(sym, w.a0, w.b0, 4), 2);  // via a2
  EXPECT_EQ(ShortestPathHops(sym, w.a0, w.b1, 1), -1);
}

TEST(GenUtil, CommonNeighborScore) {
  auto w = testutil::MakeSmallWorld();
  Hin sym = w.graph.Symmetrized();
  EXPECT_DOUBLE_EQ(CommonNeighborScore(sym, w.a0, w.a0), 1.0);
  // a0 and a1 share neighbors (a2, CatA, each other? no — common
  // neighbors only): score positive and symmetric.
  double s = CommonNeighborScore(sym, w.a0, w.a1);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
  EXPECT_DOUBLE_EQ(s, CommonNeighborScore(sym, w.a1, w.a0));
  // b1's only neighbors are b0 and CatB; a0 shares none of them.
  EXPECT_DOUBLE_EQ(CommonNeighborScore(sym, w.a0, w.b1), 0.0);
}

TEST(GenUtil, ZipfSamplerSkew) {
  Rng rng(3);
  ZipfSampler zipf(10, 1.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

}  // namespace
}  // namespace semsim

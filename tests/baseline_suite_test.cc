#include "eval/baseline_suite.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/amazon_gen.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

class BaselineSuiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AmazonOptions gen;
    gen.num_items = 80;
    gen.seed = 33;
    dataset_ = Unwrap(GenerateAmazon(gen));
  }
  Dataset dataset_;
};

TEST_F(BaselineSuiteTest, BuildsAllTenMeasures) {
  BaselineSuiteOptions opt;
  opt.pathsim_meta_path = {"co_purchase", "co_purchase"};
  opt.line.samples = 20000;  // tiny training budget: smoke only
  BaselineSuite suite = Unwrap(BaselineSuite::Build(&dataset_, opt));
  std::set<std::string> names;
  for (const NamedSimilarity& m : suite.measures()) names.insert(m.name);
  for (const char* expected :
       {"Panther", "PathSim", "SimRank", "SimRank++", "Average",
        "Multiplication", "Lin", "LINE", "Relatedness", "SemSim"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  EXPECT_EQ(suite.measures().back().name, "SemSim");  // paper's table order
}

TEST_F(BaselineSuiteTest, MeasuresProduceSaneScores) {
  BaselineSuiteOptions opt;
  opt.pathsim_meta_path = {"co_purchase", "co_purchase"};
  opt.line.samples = 20000;
  BaselineSuite suite = Unwrap(BaselineSuite::Build(&dataset_, opt));
  Rng rng(7);
  for (const NamedSimilarity& m : suite.measures()) {
    for (int i = 0; i < 50; ++i) {
      NodeId u = static_cast<NodeId>(rng.NextIndex(dataset_.graph.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.NextIndex(dataset_.graph.num_nodes()));
      double s = m.score(u, v);
      ASSERT_GE(s, 0.0) << m.name;
      ASSERT_LE(s, 1.0 + 1e-9) << m.name;
    }
  }
}

TEST_F(BaselineSuiteTest, SkippingLineDropsOnlyLine) {
  BaselineSuiteOptions opt;
  opt.pathsim_meta_path = {"co_purchase", "co_purchase"};
  opt.include_line = false;
  BaselineSuite suite = Unwrap(BaselineSuite::Build(&dataset_, opt));
  for (const NamedSimilarity& m : suite.measures()) {
    EXPECT_NE(m.name, "LINE");
  }
  EXPECT_EQ(suite.measures().size(), 9u);
}

TEST_F(BaselineSuiteTest, MeasureLookupByName) {
  BaselineSuiteOptions opt;
  opt.pathsim_meta_path = {"co_purchase", "co_purchase"};
  opt.include_line = false;
  BaselineSuite suite = Unwrap(BaselineSuite::Build(&dataset_, opt));
  const NamedSimilarity& semsim = suite.measure("SemSim");
  EXPECT_EQ(semsim.name, "SemSim");
  EXPECT_DOUBLE_EQ(semsim.score(0, 0), suite.semsim_scores().at(0, 0));
}

TEST_F(BaselineSuiteTest, RejectsBadInputs) {
  BaselineSuiteOptions opt;
  EXPECT_FALSE(BaselineSuite::Build(nullptr, opt).ok());
  opt.pathsim_meta_path = {"no_such_label"};
  EXPECT_FALSE(BaselineSuite::Build(&dataset_, opt).ok());
}

TEST_F(BaselineSuiteTest, SuiteSurvivesMove) {
  // The NamedSimilarity closures must stay valid after the suite moves
  // (Result returns by value) — guards the heap-held-matrix invariant.
  BaselineSuiteOptions opt;
  opt.pathsim_meta_path = {"co_purchase", "co_purchase"};
  opt.include_line = false;
  BaselineSuite a = Unwrap(BaselineSuite::Build(&dataset_, opt));
  double before = a.measure("SemSim").score(1, 2);
  BaselineSuite b = std::move(a);
  EXPECT_DOUBLE_EQ(b.measure("SemSim").score(1, 2), before);
}

}  // namespace
}  // namespace semsim

#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace semsim {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(PearsonR, PerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonR(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonR(x, neg), -1.0, 1e-12);
}

TEST(PearsonR, KnownValue) {
  // Hand-computed: r of (1,2,3,4,5) vs (1,3,2,5,4) is 0.8.
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 3, 2, 5, 4};
  EXPECT_NEAR(PearsonR(x, y), 0.8, 1e-12);
}

TEST(PearsonR, ZeroVarianceGivesZero) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonR(x, y), 0.0);
}

TEST(RegularizedIncompleteBeta, BoundaryAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  double a = 2.5, b = 1.7, x = 0.3;
  EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
              1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-10);
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.42), 0.42, 1e-10);
}

TEST(PearsonPValue, MatchesKnownTDistribution) {
  // r=0.8, n=5 → t = 0.8·sqrt(3/0.36) = 2.3094, df=3; two-sided p ≈ 0.1041.
  EXPECT_NEAR(PearsonPValue(0.8, 5), 0.1041, 5e-4);
  // r=0.5, n=102 → t = 5.7735, df=100 → p ≈ 8.9e-8 (tiny).
  EXPECT_LT(PearsonPValue(0.5, 102), 1e-6);
  // No correlation → p = 1.
  EXPECT_NEAR(PearsonPValue(0.0, 30), 1.0, 1e-9);
}

TEST(PearsonPValue, SmallSamplesReturnOne) {
  EXPECT_DOUBLE_EQ(PearsonPValue(0.9, 2), 1.0);
}

TEST(SpearmanRho, RankCorrelation) {
  // Monotone but non-linear relationship: Spearman = 1.
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanRho(x, y), 1.0, 1e-12);
}

TEST(SpearmanRho, HandlesTies) {
  std::vector<double> x = {1, 2, 2, 4};
  std::vector<double> y = {1, 3, 3, 4};
  EXPECT_NEAR(SpearmanRho(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace semsim

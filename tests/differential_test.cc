// Unit coverage for the differential verification harness itself: the
// random generators, the statistical assertion utilities, the dump
// formats, and — via the self-test perturbation hook — proof that a real
// deviation actually produces a violation with a usable repro line.
#include "testing/differential.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/mc_semsim.h"
#include "graph/graph_io.h"
#include "taxonomy/taxonomy_io.h"
#include "testing/random_hin.h"
#include "testing/random_taxonomy.h"
#include "testing/stat_check.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

// ---- random HIN generator -------------------------------------------------

TEST(RandomHin, SameOptionsProduceIdenticalGraphs) {
  testing::RandomHinOptions opt;
  opt.seed = 17;
  opt.num_nodes = 24;
  opt.avg_out_degree = 2.5;
  opt.degree_skew = 1.0;
  opt.self_loop_fraction = 0.1;
  opt.parallel_edge_fraction = 0.1;
  Hin a = Unwrap(testing::GenerateRandomHin(opt));
  Hin b = Unwrap(testing::GenerateRandomHin(opt));
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.node_name(v), b.node_name(v));
    auto na = a.OutNeighbors(v);
    auto nb = b.OutNeighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].node, nb[i].node);
      EXPECT_EQ(na[i].weight, nb[i].weight);  // bit-equal, not just close
      EXPECT_EQ(na[i].edge_label, nb[i].edge_label);
    }
  }
}

TEST(RandomHin, DifferentSeedsProduceDifferentGraphs) {
  testing::RandomHinOptions opt;
  opt.seed = 1;
  opt.num_nodes = 24;
  Hin a = Unwrap(testing::GenerateRandomHin(opt));
  opt.seed = 2;
  Hin b = Unwrap(testing::GenerateRandomHin(opt));
  bool differ = a.num_edges() != b.num_edges();
  for (NodeId v = 0; !differ && v < a.num_nodes(); ++v) {
    auto na = a.OutNeighbors(v);
    auto nb = b.OutNeighbors(v);
    if (na.size() != nb.size()) {
      differ = true;
      break;
    }
    for (size_t i = 0; i < na.size(); ++i) {
      if (na[i].node != nb[i].node || na[i].weight != nb[i].weight) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(RandomHin, RejectsOutOfDomainOptions) {
  testing::RandomHinOptions opt;
  opt.num_nodes = 0;
  EXPECT_FALSE(testing::GenerateRandomHin(opt).ok());
  opt = {};
  opt.node_label_alphabet = 0;
  EXPECT_FALSE(testing::GenerateRandomHin(opt).ok());
  opt = {};
  opt.avg_out_degree = -1;
  EXPECT_FALSE(testing::GenerateRandomHin(opt).ok());
  opt = {};
  opt.dangling_fraction = 1.5;
  EXPECT_FALSE(testing::GenerateRandomHin(opt).ok());
  opt = {};
  opt.num_components = 0;
  EXPECT_FALSE(testing::GenerateRandomHin(opt).ok());
  opt = {};
  opt.min_weight = -0.5;
  EXPECT_FALSE(testing::GenerateRandomHin(opt).ok());
}

TEST(RandomHin, DanglingFractionProducesInIsolatedNodes) {
  testing::RandomHinOptions opt;
  opt.seed = 5;
  opt.num_nodes = 40;
  opt.avg_out_degree = 3.0;
  opt.dangling_fraction = 0.25;
  Hin g = Unwrap(testing::GenerateRandomHin(opt));
  int dangling = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) ++dangling;
  }
  // Selection is Bernoulli(0.25) per node, so the count is binomial, not
  // exact — but the generator is seed-deterministic, so this bound is
  // stable (seed 5 marks 9 of 40).
  EXPECT_GE(dangling, 5);
}

TEST(RandomHin, ComponentsNeverShareEdges) {
  testing::RandomHinOptions opt;
  opt.seed = 9;
  opt.num_nodes = 30;
  opt.num_components = 3;
  opt.avg_out_degree = 3.0;
  Hin g = Unwrap(testing::GenerateRandomHin(opt));
  EXPECT_GT(g.num_edges(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Neighbor& nb : g.OutNeighbors(v)) {
      EXPECT_EQ(v % 3, nb.node % 3)
          << "edge " << v << " -> " << nb.node << " crosses components";
    }
  }
}

TEST(RandomHin, UndirectedEdgesAreSymmetric) {
  testing::RandomHinOptions opt;
  opt.seed = 3;
  opt.num_nodes = 20;
  opt.undirected_edges = true;
  Hin g = Unwrap(testing::GenerateRandomHin(opt));
  EXPECT_GT(g.num_edges(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Neighbor& nb : g.OutNeighbors(v)) {
      Hin::EdgeInfo back = g.InEdgeInfo(v, nb.node);
      EXPECT_GT(back.multiplicity, 0u)
          << "no reverse edge for " << v << " -> " << nb.node;
    }
  }
}

// ---- random taxonomy generator --------------------------------------------

TEST(RandomTaxonomy, SameOptionsProduceIdenticalTrees) {
  testing::RandomTaxonomyOptions opt;
  opt.seed = 11;
  opt.num_concepts = 15;
  opt.shape = testing::TaxonomyShape::kRandomAttach;
  Taxonomy a = Unwrap(testing::GenerateRandomTaxonomy(opt));
  Taxonomy b = Unwrap(testing::GenerateRandomTaxonomy(opt));
  ASSERT_EQ(a.num_concepts(), b.num_concepts());
  for (ConceptId c = 0; c < a.num_concepts(); ++c) {
    EXPECT_EQ(a.name(c), b.name(c));
    EXPECT_EQ(a.parent(c), b.parent(c));
  }
}

TEST(RandomTaxonomy, ChainShapeReachesMaximumDepth) {
  testing::RandomTaxonomyOptions opt;
  opt.num_concepts = 10;
  opt.shape = testing::TaxonomyShape::kChain;
  Taxonomy t = Unwrap(testing::GenerateRandomTaxonomy(opt));
  uint32_t max_depth = 0;
  for (ConceptId c = 0; c < t.num_concepts(); ++c) {
    max_depth = std::max(max_depth, t.depth(c));
  }
  EXPECT_EQ(max_depth, 9u);
}

TEST(RandomTaxonomy, StarShapeStaysFlat) {
  testing::RandomTaxonomyOptions opt;
  opt.num_concepts = 10;
  opt.shape = testing::TaxonomyShape::kStar;
  Taxonomy t = Unwrap(testing::GenerateRandomTaxonomy(opt));
  for (ConceptId c = 0; c < t.num_concepts(); ++c) {
    EXPECT_LE(t.depth(c), 1u);
  }
}

TEST(RandomTaxonomy, MultiRootForestGetsSyntheticRoot) {
  testing::RandomTaxonomyOptions opt;
  opt.num_concepts = 8;
  opt.num_roots = 3;
  Taxonomy t = Unwrap(testing::GenerateRandomTaxonomy(opt));
  // 8 generated concepts + the synthetic "<ROOT>" above the forest.
  EXPECT_EQ(t.num_concepts(), 9u);
}

TEST(RandomTaxonomy, RejectsOutOfDomainOptions) {
  testing::RandomTaxonomyOptions opt;
  opt.num_concepts = 0;
  EXPECT_FALSE(testing::GenerateRandomTaxonomy(opt).ok());
  opt = {};
  opt.max_fanout = 0;
  EXPECT_FALSE(testing::GenerateRandomTaxonomy(opt).ok());
}

// ---- statistical assertion utilities --------------------------------------

TEST(StatCheck, HoeffdingEpsilonMatchesClosedForm) {
  double eps = testing::HoeffdingEpsilon(400, 1.0, 0.05);
  EXPECT_NEAR(eps, std::sqrt(std::log(2.0 / 0.05) / 800.0), 1e-12);
  // Epsilon shrinks with n and grows with range.
  EXPECT_LT(testing::HoeffdingEpsilon(1600, 1.0, 0.05), eps);
  EXPECT_NEAR(testing::HoeffdingEpsilon(400, 2.0, 0.05), 2 * eps, 1e-12);
}

TEST(StatCheck, NormalQuantileHitsTextbookValues) {
  EXPECT_NEAR(testing::NormalQuantile(0.05), 1.9599639845, 1e-6);
  EXPECT_NEAR(testing::NormalQuantile(0.01), 2.5758293035, 1e-6);
  EXPECT_NEAR(testing::NormalQuantile(0.3173), 1.0, 1e-3);
}

TEST(StatCheck, CltEpsilonScalesWithStdAndSamples) {
  double eps = testing::CltEpsilon(100, 0.5, 0.05);
  EXPECT_NEAR(eps, testing::NormalQuantile(0.05) * 0.5 / 10.0, 1e-12);
}

TEST(StatCheck, MomentsOfConstantSamplesHaveZeroStd) {
  std::vector<double> samples(50, 0.25);
  testing::SampleMoments m = testing::ComputeMoments(samples);
  EXPECT_DOUBLE_EQ(m.mean, 0.25);
  EXPECT_DOUBLE_EQ(m.std_dev, 0.0);
}

TEST(StatCheck, WithinStatBandAcceptsSmallDeviations) {
  std::vector<double> samples(200, 0.5);
  for (size_t i = 0; i < samples.size(); i += 2) samples[i] = 0.6;
  testing::SampleMoments m = testing::ComputeMoments(samples);
  EXPECT_EQ(testing::CheckWithinStatBand(m.mean, m.mean + 1e-4, samples, 1.0,
                                         0.01, 0.0, "unit"),
            "");
}

TEST(StatCheck, WithinStatBandRejectsLargeDeviations) {
  std::vector<double> samples(200, 0.5);
  std::string msg = testing::CheckWithinStatBand(0.5, 0.9, samples, 1.0, 0.01,
                                                 0.0, "unit");
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("unit"), std::string::npos);
}

TEST(StatCheck, BiasSlackWidensTheBand) {
  // Constant samples: the CLT term is zero and the Hoeffding band at
  // n=200, delta=0.01, range 1 is ~0.115 — a 0.2 deviation fails
  // without slack and passes once the slack absorbs it.
  std::vector<double> samples(200, 0.5);
  EXPECT_NE(testing::CheckWithinStatBand(0.5, 0.7, samples, 1.0, 0.01, 0.0,
                                         "unit"),
            "");
  EXPECT_EQ(testing::CheckWithinStatBand(0.5, 0.7, samples, 1.0, 0.01, 0.15,
                                         "unit"),
            "");
}

TEST(StatCheck, TopKMatchesScoresCatchesWrongNodeAndWrongScore) {
  std::vector<double> scores = {0.1, 0.9, 0.4, 0.8, 0.2};
  std::vector<Scored> good = {{3, 0.8}, {2, 0.4}};  // query 1 excluded
  EXPECT_EQ(testing::CheckTopKMatchesScores(good, scores, 1, 2, "unit"), "");
  std::vector<Scored> wrong_node = {{3, 0.8}, {4, 0.2}};
  EXPECT_NE(testing::CheckTopKMatchesScores(wrong_node, scores, 1, 2, "unit"),
            "");
  std::vector<Scored> wrong_score = {{3, 0.8}, {2, 0.41}};
  EXPECT_NE(testing::CheckTopKMatchesScores(wrong_score, scores, 1, 2, "unit"),
            "");
}

TEST(StatCheck, TopKRankAgreementAllowsNearTiesOnly) {
  std::vector<double> oracle = {0.0, 0.9, 0.50, 0.49, 0.1};
  // Selecting node 3 (0.49) over node 2 (0.50) is a near-tie: fine at
  // tolerance 0.05, a violation at tolerance 0.001.
  std::vector<Scored> topk = {{1, 0.9}, {3, 0.52}};
  EXPECT_EQ(testing::CheckTopKRankAgreement(topk, oracle, 0, 0.05, "unit"),
            "");
  std::vector<Scored> bad = {{1, 0.9}, {4, 0.52}};  // 0.1 is far from 0.50
  EXPECT_NE(testing::CheckTopKRankAgreement(bad, oracle, 0, 0.05, "unit"), "");
}

// ---- taxonomy / concept-map persistence -----------------------------------

class TaxonomyIoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "semsim_taxio_" + name;
  }
};

TEST_F(TaxonomyIoTest, RandomTaxonomyRoundTrips) {
  testing::RandomTaxonomyOptions opt;
  opt.seed = 21;
  opt.num_concepts = 14;
  opt.num_roots = 2;  // exercises the synthetic "<ROOT>"
  Taxonomy t = Unwrap(testing::GenerateRandomTaxonomy(opt));
  std::string path = Path("roundtrip.tax");
  ASSERT_TRUE(SaveTaxonomy(t, path).ok());
  Taxonomy loaded = Unwrap(LoadTaxonomy(path));
  ASSERT_EQ(loaded.num_concepts(), t.num_concepts());
  for (ConceptId c = 0; c < t.num_concepts(); ++c) {
    EXPECT_EQ(loaded.name(c), t.name(c));
    EXPECT_EQ(loaded.parent(c), t.parent(c));
    EXPECT_EQ(loaded.depth(c), t.depth(c));
  }
  std::remove(path.c_str());
}

TEST_F(TaxonomyIoTest, LoadRejectsUnknownDirectiveAndUnknownParent) {
  std::string bad_dir = Path("baddir.tax");
  {
    std::ofstream out(bad_dir);
    out << "c Root -\nx what\n";
  }
  EXPECT_FALSE(LoadTaxonomy(bad_dir).ok());
  std::remove(bad_dir.c_str());

  std::string bad_parent = Path("badparent.tax");
  {
    std::ofstream out(bad_parent);
    out << "c Root -\nc Child Nowhere\n";
  }
  EXPECT_FALSE(LoadTaxonomy(bad_parent).ok());
  std::remove(bad_parent.c_str());
}

TEST_F(TaxonomyIoTest, ConceptMapRoundTripsAndRejectsCorruption) {
  TaxonomyBuilder tb;
  ConceptId root = tb.AddConcept("Root");
  ConceptId a = tb.AddConcept("A", root);
  ConceptId b = tb.AddConcept("B", root);
  Taxonomy t = Unwrap(std::move(tb).Build());

  std::vector<ConceptId> map = {a, b, a, root};
  std::string path = Path("map.map");
  ASSERT_TRUE(SaveConceptMap(t, map, path).ok());
  std::vector<ConceptId> loaded = Unwrap(LoadConceptMap(t, path));
  EXPECT_EQ(loaded, map);
  std::remove(path.c_str());

  auto write_and_reject = [&](const std::string& name,
                              const std::string& body) {
    std::string p = Path(name);
    {
      std::ofstream out(p);
      out << body;
    }
    EXPECT_FALSE(LoadConceptMap(t, p).ok()) << name;
    std::remove(p.c_str());
  };
  write_and_reject("unknown.map", "m 0 Nowhere\n");
  write_and_reject("dupe.map", "m 0 A\nm 0 B\n");
  write_and_reject("gap.map", "m 0 A\nm 2 B\n");
}

// ---- estimator option validation ------------------------------------------

TEST(ValidateMcOptions, EnforcesDecayDomainAndLemmaBound) {
  EXPECT_TRUE(ValidateMcOptions(SemSimMcOptions{0.6, 0.0}).ok());
  EXPECT_TRUE(ValidateMcOptions(SemSimMcOptions{0.6, 0.4}).ok());  // boundary
  for (double decay : {0.0, 1.0, -0.2, 1.5}) {
    EXPECT_FALSE(ValidateMcOptions(SemSimMcOptions{decay, 0.0}).ok())
        << "decay=" << decay;
  }
  Status over = ValidateMcOptions(SemSimMcOptions{0.6, 0.41});
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.ToString().find("Lemma 4.7"), std::string::npos);
}

// ---- the harness itself ---------------------------------------------------

TEST(Differential, ConfigDerivationIsDeterministicAndValid) {
  for (uint64_t seed : {1ull, 7ull, 123ull, 4096ull}) {
    testing::DifferentialConfig a = testing::MakeDifferentialConfig(seed);
    testing::DifferentialConfig b = testing::MakeDifferentialConfig(seed);
    EXPECT_EQ(a.Describe(), b.Describe());
    EXPECT_GT(a.mc.decay, 0.0);
    EXPECT_LT(a.mc.decay, 1.0);
    EXPECT_LE(a.mc.theta, 1.0 - a.mc.decay);
    EXPECT_GE(a.threads, 2);
  }
}

TEST(Differential, SmallSweepPassesCleanly) {
  testing::DifferentialOptions opt;
  testing::DifferentialReport report =
      testing::RunDifferentialSweep(1, 10, opt);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_EQ(report.instances, 10);
  EXPECT_GT(report.bit_checks, 0);
  EXPECT_GT(report.stat_checks, 0);
}

TEST(Differential, SelfTestPerturbationProducesActionableViolation) {
  // "Testing the tester": a 1e-6 nudge on one engine result must trip
  // the bit-identity net and the violation must carry the replay command.
  testing::DifferentialConfig cfg = testing::MakeDifferentialConfig(42);
  testing::DifferentialOptions opt;
  opt.self_test_perturbation = 1e-6;
  testing::DifferentialReport report =
      testing::RunDifferentialInstance(cfg, opt);
  ASSERT_FALSE(report.ok());
  const std::string& v = report.violations.front();
  EXPECT_NE(v.find("engine-equivalence"), std::string::npos) << v;
  EXPECT_NE(v.find("--seed=42"), std::string::npos) << v;
  EXPECT_NE(v.find(testing::ReproCommand(42)), std::string::npos) << v;
}

TEST(Differential, FailingInstanceDumpsReplayableFiles) {
  std::string dir = ::testing::TempDir() + "semsim_diff_dump";
  std::filesystem::remove_all(dir);
  testing::DifferentialConfig cfg = testing::MakeDifferentialConfig(42);
  testing::DifferentialOptions opt;
  opt.self_test_perturbation = 1e-6;
  opt.dump_dir = dir;
  testing::DifferentialReport report =
      testing::RunDifferentialInstance(cfg, opt);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.dumped_files.empty());

  // Every dumped artifact must exist and the graph/taxonomy/concept-map
  // triple must round-trip through the public loaders.
  Hin original = Unwrap(testing::GenerateRandomHin(cfg.hin));
  bool saw_hin = false, saw_tax = false, saw_map = false;
  Taxonomy loaded_tax;
  std::string map_path;
  for (const std::string& f : report.dumped_files) {
    EXPECT_TRUE(std::filesystem::exists(f)) << f;
    if (f.ends_with(".hin")) {
      saw_hin = true;
      Hin g = Unwrap(LoadHin(f));
      EXPECT_EQ(g.num_nodes(), original.num_nodes());
      EXPECT_EQ(g.num_edges(), original.num_edges());
    } else if (f.ends_with(".tax")) {
      saw_tax = true;
      loaded_tax = Unwrap(LoadTaxonomy(f));
      EXPECT_GT(loaded_tax.num_concepts(), 0u);
    } else if (f.ends_with(".map")) {
      saw_map = true;
      map_path = f;
    }
  }
  EXPECT_TRUE(saw_hin);
  EXPECT_TRUE(saw_tax);
  ASSERT_TRUE(saw_map);
  std::vector<ConceptId> map = Unwrap(LoadConceptMap(loaded_tax, map_path));
  EXPECT_EQ(map.size(), original.num_nodes());
  std::filesystem::remove_all(dir);
}

TEST(Differential, BiasBoundIsMonotoneInHorizon) {
  // c^min(t,k) + θ: longer horizons shrink the deterministic gap, theta
  // adds linearly.
  EXPECT_GT(testing::DifferentialBias(0.6, 5, 24, 0.0),
            testing::DifferentialBias(0.6, 15, 24, 0.0));
  EXPECT_DOUBLE_EQ(
      testing::DifferentialBias(0.6, 15, 10, 0.0),
      std::pow(0.6, 10));
  EXPECT_NEAR(testing::DifferentialBias(0.6, 15, 24, 0.1) -
                  testing::DifferentialBias(0.6, 15, 24, 0.0),
              0.1, 1e-12);
}

}  // namespace
}  // namespace semsim

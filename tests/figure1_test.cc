#include "datasets/figure1.h"

#include <gtest/gtest.h>

#include "core/iterative.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = Unwrap(MakeFigure1Dataset());
    aditi_ = Unwrap(dataset_.graph.FindNode("Aditi"));
    bo_ = Unwrap(dataset_.graph.FindNode("Bo"));
    john_ = Unwrap(dataset_.graph.FindNode("John"));
    paul_ = Unwrap(dataset_.graph.FindNode("Paul"));
  }

  Dataset dataset_;
  NodeId aditi_, bo_, john_, paul_;
};

TEST_F(Figure1Test, LinScoresMatchExample22) {
  LinMeasure lin(&dataset_.context);
  // "Lin(Bo,Aditi) = Lin(John,Aditi) = 0.01" — all authors are leaves
  // under Author with IC 1.
  EXPECT_NEAR(lin.Sim(bo_, aditi_), 0.01, 1e-9);
  EXPECT_NEAR(lin.Sim(john_, aditi_), 0.01, 1e-9);

  NodeId spatial = Unwrap(dataset_.graph.FindNode("Spatial_Crowdsourcing"));
  NodeId crowd = Unwrap(dataset_.graph.FindNode("Crowd_Mining"));
  NodeId web = Unwrap(dataset_.graph.FindNode("Web_Data_Mining"));
  // Example 2.2 reports 0.94 and 0.37; with the Table 1 IC values we get
  // 2·0.85/(1.0+0.9) = 0.895 and 2·0.3/(0.7+0.9) = 0.375. The spatial-
  // crowdsourcing pair remains far more similar than the data-mining one,
  // which is what drives the example.
  EXPECT_NEAR(lin.Sim(spatial, crowd), 0.895, 0.01);
  EXPECT_NEAR(lin.Sim(web, crowd), 0.375, 0.01);
  EXPECT_GT(lin.Sim(spatial, crowd), 2 * lin.Sim(web, crowd));

  // Countries are prevalent → nearly uninformative similarity.
  NodeId india = Unwrap(dataset_.graph.FindNode("India"));
  NodeId china = Unwrap(dataset_.graph.FindNode("China"));
  NodeId usa = Unwrap(dataset_.graph.FindNode("USA"));
  EXPECT_NEAR(lin.Sim(india, china), 0.015, 1e-9);
  EXPECT_NEAR(lin.Sim(india, usa), 0.001, 1e-9);
}

TEST_F(Figure1Test, SemSimPrefersJohnSimRankPrefersBo) {
  // The paper's headline example (Example 2.2, c=0.8, k=3): SemSim ranks
  // John closer to Aditi (their fields are semantically closer), while
  // SimRank ranks Bo closer (shared continent, symmetric structure).
  LinMeasure lin(&dataset_.context);
  ScoreMatrix semsim =
      Unwrap(ComputeSemSim(dataset_.graph, lin, 0.8, 3, nullptr));
  ScoreMatrix simrank = Unwrap(ComputeSimRank(dataset_.graph, 0.8, 3, nullptr));

  EXPECT_GT(semsim.at(john_, aditi_), semsim.at(bo_, aditi_));
  EXPECT_GT(simrank.at(bo_, aditi_), simrank.at(john_, aditi_));

  // All SemSim author-pair scores respect the semantic upper bound 0.01.
  EXPECT_LE(semsim.at(john_, aditi_), 0.01 + 1e-12);
  EXPECT_LE(semsim.at(bo_, aditi_), 0.01 + 1e-12);
}

TEST_F(Figure1Test, OrderingIsStableAcrossMoreIterations) {
  LinMeasure lin(&dataset_.context);
  ScoreMatrix semsim =
      Unwrap(ComputeSemSim(dataset_.graph, lin, 0.8, 12, nullptr));
  EXPECT_GT(semsim.at(john_, aditi_), semsim.at(bo_, aditi_));
}

}  // namespace
}  // namespace semsim

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/mapped_file.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/batch_engine.h"
#include "core/walk_index.h"
#include "serving/admission_queue.h"
#include "serving/query_service.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

/// Every test starts and ends with a clean registry; armed sites are
/// process-global state.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Global().DisarmAll(); }
  void TearDown() override { FailPoints::Global().DisarmAll(); }
};

// ---- registry semantics (independent of SEMSIM_FAILPOINTS: Evaluate is
// always compiled; only the macros gate) ------------------------------------

TEST_F(FailPointTest, UnarmedSiteEvaluatesOk) {
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(FailPoints::Global().Evaluate("nowhere/nothing").ok());
  EXPECT_EQ(FailPoints::Global().Hits("nowhere/nothing"), 0u);
}

TEST_F(FailPointTest, ErrorPolicyHonorsSkipAndMaxFires) {
  FailPoints& fp = FailPoints::Global();
  fp.ArmError("t/err", Status::Internal("injected"), /*skip_hits=*/2,
              /*max_fires=*/2);
  EXPECT_TRUE(FailPoints::AnyArmed());
  EXPECT_TRUE(fp.Evaluate("t/err").ok());   // hit 1: skipped
  EXPECT_TRUE(fp.Evaluate("t/err").ok());   // hit 2: skipped
  EXPECT_FALSE(fp.Evaluate("t/err").ok());  // hit 3: fire 1
  EXPECT_FALSE(fp.Evaluate("t/err").ok());  // hit 4: fire 2
  EXPECT_TRUE(fp.Evaluate("t/err").ok());   // hit 5: max_fires exhausted
  EXPECT_EQ(fp.Hits("t/err"), 5u);
  EXPECT_EQ(fp.Fires("t/err"), 2u);
}

TEST_F(FailPointTest, ErrorPolicyReturnsTheArmedStatus) {
  FailPoints& fp = FailPoints::Global();
  fp.ArmError("t/status", Status::IOError("disk on fire"));
  Status s = fp.Evaluate("t/status");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.ToString().find("disk on fire"), std::string::npos);
}

TEST_F(FailPointTest, NthHitFiresExactlyOnce) {
  FailPoints& fp = FailPoints::Global();
  fp.ArmNthHit("t/nth", 3, Status::Internal("third"));
  EXPECT_TRUE(fp.Evaluate("t/nth").ok());
  EXPECT_TRUE(fp.Evaluate("t/nth").ok());
  EXPECT_FALSE(fp.Evaluate("t/nth").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fp.Evaluate("t/nth").ok());
  EXPECT_EQ(fp.Fires("t/nth"), 1u);
}

TEST_F(FailPointTest, ProbabilityPatternIsSeedDeterministic) {
  FailPoints& fp = FailPoints::Global();
  auto pattern = [&](uint64_t seed) {
    fp.ArmProbability("t/prob", 0.5, seed, Status::Internal("maybe"));
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(!fp.Evaluate("t/prob").ok());
    fp.Disarm("t/prob");
    return fires;
  };
  std::vector<bool> a = pattern(7);
  std::vector<bool> b = pattern(7);
  EXPECT_EQ(a, b);
  // Sanity: p=0.5 over 64 draws fires at least once and passes at least
  // once (probability of either extreme is 2^-64).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FailPointTest, DelayPolicySleepsWithoutError) {
  FailPoints& fp = FailPoints::Global();
  fp.ArmDelay("t/delay", std::chrono::milliseconds(5));
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(fp.Evaluate("t/delay").ok());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(5));
  EXPECT_EQ(fp.Fires("t/delay"), 1u);
}

TEST_F(FailPointTest, DisarmAllClearsEverything) {
  FailPoints& fp = FailPoints::Global();
  fp.ArmError("t/a", Status::Internal("a"));
  fp.ArmDelay("t/b", std::chrono::nanoseconds(1));
  EXPECT_EQ(fp.ArmedSites().size(), 2u);
  fp.DisarmAll();
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(fp.ArmedSites().empty());
  EXPECT_TRUE(fp.Evaluate("t/a").ok());
}

TEST_F(FailPointTest, RearmingReplacesThePolicy) {
  FailPoints& fp = FailPoints::Global();
  fp.ArmError("t/rearm", Status::Internal("first"));
  EXPECT_FALSE(fp.Evaluate("t/rearm").ok());
  fp.ArmNthHit("t/rearm", 2, Status::Internal("second"));
  EXPECT_EQ(fp.Hits("t/rearm"), 0u) << "rearming resets the counters";
  EXPECT_TRUE(fp.Evaluate("t/rearm").ok());
  EXPECT_FALSE(fp.Evaluate("t/rearm").ok());
}

// ---- compiled-in sites: each armed site flips an error path ----------------
//
// Each test below demonstrates one SEMSIM_FAILPOINT site in the code
// under test taking its failure branch. When the sites are compiled out
// the macros are inert, so the whole section skips.

#if !SEMSIM_FAILPOINTS
#define SEMSIM_REQUIRE_FAILPOINTS() \
  GTEST_SKIP() << "failpoint sites compiled out (SEMSIM_FAILPOINTS=0)"
#else
#define SEMSIM_REQUIRE_FAILPOINTS() \
  do {                              \
  } while (false)
#endif

std::string WriteTempFile(const std::string& name, const std::string& bytes) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST_F(FailPointTest, SiteMappedFileOpen) {
  SEMSIM_REQUIRE_FAILPOINTS();
  std::string path = WriteTempFile("semsim_fp_open.bin", "payload");
  FailPoints::Global().ArmError("mapped_file/open",
                                Status::IOError("injected open failure"));
  auto result = MappedFile::Open(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(FailPointTest, SiteMappedFileRead) {
  SEMSIM_REQUIRE_FAILPOINTS();
  std::string path = WriteTempFile("semsim_fp_read.bin", "payload");
  FailPoints::Global().ArmError("mapped_file/read",
                                Status::IOError("injected read failure"));
  auto result = MappedFile::OpenBuffered(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(FailPointTest, SiteMappedFileMmapFallsBackToBuffered) {
  SEMSIM_REQUIRE_FAILPOINTS();
  std::string path = WriteTempFile("semsim_fp_mmap.bin", "fallback payload");
  FailPoints::Global().ArmError("mapped_file/mmap",
                                Status::Internal("injected mmap failure"));
  MappedFile file = Unwrap(MappedFile::Open(path));
  EXPECT_FALSE(file.mapped()) << "mmap failure must fall back, not fail";
  std::remove(path.c_str());
}

class WalkIndexSiteTest : public FailPointTest {
 protected:
  void SetUp() override {
    FailPointTest::SetUp();
    auto w = MakeSmallWorld();
    WalkIndexOptions opt;
    opt.num_walks = 6;
    opt.walk_length = 4;
    WalkIndex index = WalkIndex::Build(w.graph, opt);
    num_nodes_ = w.graph.num_nodes();
    path_ = ::testing::TempDir() + "semsim_fp_walks.widx";
    ASSERT_TRUE(index.Save(path_).ok());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    FailPointTest::TearDown();
  }
  std::string path_;
  size_t num_nodes_ = 0;
};

TEST_F(WalkIndexSiteTest, SiteWalkIndexLoadCountsTheFailure) {
  SEMSIM_REQUIRE_FAILPOINTS();
  Counter* failures = MetricsRegistry::Global().GetCounter(
      "semsim_walk_index_load_failures_total");
  uint64_t before = failures->Value();
  FailPoints::Global().ArmError("walk_index/load",
                                Status::IOError("injected load failure"));
  auto result = WalkIndex::Load(path_, num_nodes_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_EQ(failures->Value(), before + 1);
}

TEST_F(WalkIndexSiteTest, SiteWalkIndexMapCountsTheFailure) {
  SEMSIM_REQUIRE_FAILPOINTS();
  Counter* failures = MetricsRegistry::Global().GetCounter(
      "semsim_walk_index_map_failures_total");
  uint64_t before = failures->Value();
  FailPoints::Global().ArmError("walk_index/map",
                                Status::IOError("injected map failure"));
  auto result = WalkIndex::Map(path_, num_nodes_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_EQ(failures->Value(), before + 1);
}

TEST_F(WalkIndexSiteTest, SiteWalkIndexSectionFailsBothLoadPaths) {
  SEMSIM_REQUIRE_FAILPOINTS();
  // The section seam sits in the parser both Load and Map share.
  FailPoints::Global().ArmError("walk_index/section",
                                Status::IOError("injected section failure"));
  EXPECT_FALSE(WalkIndex::Load(path_, num_nodes_).ok());
  EXPECT_FALSE(WalkIndex::Map(path_, num_nodes_).ok());
  EXPECT_EQ(FailPoints::Global().Fires("walk_index/section"), 2u);
}

TEST_F(FailPointTest, SiteAdmissionQueueTryPushLeavesItemIntact) {
  SEMSIM_REQUIRE_FAILPOINTS();
  AdmissionQueue<std::string> queue(4);
  FailPoints::Global().ArmError("admission_queue/try_push",
                                Status::ResourceExhausted("injected"));
  std::string item = "precious payload";
  EXPECT_FALSE(queue.TryPush(item));
  EXPECT_EQ(item, "precious payload") << "rejected items must not be consumed";
  EXPECT_EQ(queue.size(), 0u);
  // Disarmed, the same push succeeds — the site synthesizes a full
  // queue, it does not corrupt it.
  FailPoints::Global().DisarmAll();
  EXPECT_TRUE(queue.TryPush(item));
  EXPECT_EQ(queue.size(), 1u);
}

TEST_F(FailPointTest, SiteAdmissionQueuePopDelays) {
  SEMSIM_REQUIRE_FAILPOINTS();
  AdmissionQueue<int> queue(4);
  int item = 7;
  ASSERT_TRUE(queue.TryPush(item));
  FailPoints::Global().ArmDelay("admission_queue/pop",
                                std::chrono::milliseconds(2));
  auto start = std::chrono::steady_clock::now();
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 7);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(2));
  EXPECT_EQ(FailPoints::Global().Fires("admission_queue/pop"), 1u);
}

TEST_F(FailPointTest, SiteThreadPoolDispatchIsHitPerChunk) {
  SEMSIM_REQUIRE_FAILPOINTS();
  FailPoints::Global().ArmDelay("thread_pool/dispatch",
                                std::chrono::nanoseconds(1));
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 64, [&](size_t lo, size_t hi) {
    sum.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(sum.load(), 64);
  EXPECT_GT(FailPoints::Global().Hits("thread_pool/dispatch"), 0u);
}

TEST_F(FailPointTest, SiteCancelShouldStopForcesCooperativeUnwind) {
  SEMSIM_REQUIRE_FAILPOINTS();
  CancelToken token;
  FailPoints::Global().ArmError("cancel/should_stop",
                                Status::Cancelled("injected stop"));
  // The poll observes a stop without the token itself firing.
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_TRUE(token.observed());

  // Downstream effect: every ParallelFor chunk body is skipped — the
  // cooperative-unwind path the estimator loops rely on, driven without
  // arming any real deadline.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  pool.ParallelFor(
      0, 32, [&](size_t lo, size_t hi) { executed += static_cast<int>(hi - lo); },
      &token);
  EXPECT_EQ(executed.load(), 0) << "all chunk bodies must be skipped";
}

TEST_F(FailPointTest, SiteQuerySchedulerDelayIsHitPerRequest) {
  SEMSIM_REQUIRE_FAILPOINTS();
  auto w = MakeSmallWorld();
  ConstantMeasure measure;
  WalkIndexOptions wopt;
  wopt.num_walks = 8;
  wopt.walk_length = 4;
  WalkIndex walks = WalkIndex::Build(w.graph, wopt);
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&w.graph, &measure, &walks));
  QueryService service = Unwrap(QueryService::Create(&engine));

  FailPoints::Global().ArmDelay("query_service/scheduler",
                                std::chrono::nanoseconds(1));
  QueryRequest req;
  req.kind = QueryRequestKind::kPairs;
  req.pairs.push_back({w.a0, w.a1});
  QueryResponse resp = service.Submit(std::move(req)).Take();
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(FailPoints::Global().Fires("query_service/scheduler"), 1u);
  service.Shutdown();
}

}  // namespace
}  // namespace semsim

#include "core/walk_index.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(WalkIndex, DeterministicForSeed) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 10;
  opt.walk_length = 8;
  opt.seed = 99;
  WalkIndex a = WalkIndex::Build(w.graph, opt);
  WalkIndex b = WalkIndex::Build(w.graph, opt);
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto wa = a.Walk(v, k);
      auto wb = b.Walk(v, k);
      for (int s = 0; s < opt.walk_length; ++s) ASSERT_EQ(wa[s], wb[s]);
    }
  }
}

TEST(WalkIndex, StepsAreValidInNeighbors) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 20;
  opt.walk_length = 10;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto walk = index.Walk(v, k);
      NodeId cur = v;
      for (int s = 0; s < opt.walk_length; ++s) {
        if (walk[s] == kInvalidNode) {
          // Once dead, stays dead.
          for (int r = s; r < opt.walk_length; ++r) {
            ASSERT_EQ(walk[r], kInvalidNode);
          }
          break;
        }
        bool found = false;
        for (const Neighbor& nb : w.graph.InNeighbors(cur)) {
          if (nb.node == walk[s]) {
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found) << "step to non-in-neighbor";
        cur = walk[s];
      }
    }
  }
}

TEST(WalkIndex, DeadEndsPadWithInvalid) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");  // no in-neighbors
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  WalkIndexOptions opt;
  opt.num_walks = 3;
  opt.walk_length = 4;
  WalkIndex index = WalkIndex::Build(g, opt);
  for (int k = 0; k < 3; ++k) {
    auto wx = index.Walk(x, k);
    for (int s = 0; s < 4; ++s) EXPECT_EQ(wx[s], kInvalidNode);
    auto wy = index.Walk(y, k);
    EXPECT_EQ(wy[0], x);  // only in-neighbor
    EXPECT_EQ(wy[1], kInvalidNode);
  }
}

TEST(WalkIndex, MemoryAccounting) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 5;
  opt.walk_length = 7;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  // Padded step array plus one uint16_t live length per (node, walk).
  EXPECT_EQ(index.MemoryBytes(),
            w.graph.num_nodes() * 5 * 7 * sizeof(NodeId) +
                w.graph.num_nodes() * 5 * sizeof(uint16_t));
  EXPECT_GE(index.build_seconds(), 0.0);
}

TEST(WalkIndex, LiveLengthsMatchPaddedScan) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 20;
  opt.walk_length = 10;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto walk = index.Walk(v, k);
      int expected = opt.walk_length;
      for (int s = 0; s < opt.walk_length; ++s) {
        if (walk[s] == kInvalidNode) {
          expected = s;
          break;
        }
      }
      ASSERT_EQ(index.WalkLiveLength(v, k), expected);
      // The compact accessor exposes the same storage.
      ASSERT_EQ(index.WalkData(v, k), walk.data());
    }
  }
}

TEST(WalkIndex, LiveLengthsOnDeadAndIsolatedNodes) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");  // no in-neighbors: walks die instantly
  NodeId y = b.AddNode("y", "t");  // one in-neighbor (x), then dead
  ASSERT_TRUE(b.AddEdge(x, y, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  WalkIndexOptions opt;
  opt.num_walks = 3;
  opt.walk_length = 4;
  WalkIndex index = WalkIndex::Build(g, opt);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(index.WalkLiveLength(x, k), 0);
    EXPECT_EQ(index.WalkLiveLength(y, k), 1);
  }
}

TEST(WalkIndexIo, LoadRecomputesLiveLengths) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 12;
  opt.walk_length = 6;
  WalkIndex original = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_walks_lens.bin";
  ASSERT_TRUE(original.Save(path).ok());
  WalkIndex loaded = Unwrap(WalkIndex::Load(path, w.graph.num_nodes()));
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      ASSERT_EQ(loaded.WalkLiveLength(v, k), original.WalkLiveLength(v, k));
    }
  }
  std::remove(path.c_str());
}

TEST(WalkIndexIo, SamplerKindRoundTripsThroughArtifact) {
  // The header's sampler byte records which RNG-stream recipe the walks
  // were built with; Load and Map must both surface it so callers can
  // reason about seed compatibility. Exercise the non-default value.
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 10;
  opt.walk_length = 6;
  opt.weighted = true;
  opt.sampler = SamplerKind::kScan;
  WalkIndex original = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_walks_sampler.bin";
  ASSERT_TRUE(original.Save(path).ok());
  WalkIndex loaded = Unwrap(WalkIndex::Load(path, w.graph.num_nodes()));
  EXPECT_EQ(loaded.options().sampler, SamplerKind::kScan);
  EXPECT_TRUE(loaded.options().weighted);
  WalkIndex mapped = Unwrap(WalkIndex::Map(path, w.graph.num_nodes()));
  EXPECT_EQ(mapped.options().sampler, SamplerKind::kScan);
  std::remove(path.c_str());
}

TEST(WalkIndexIo, RejectsLegacyFormatWithClearMessage) {
  // A version-1 file: the old magic followed by the old (version-less)
  // header layout. Must fail as FailedPrecondition telling the user to
  // rebuild, not as a garbage file.
  std::string path = ::testing::TempDir() + "semsim_walks_v1.bin";
  {
    std::ofstream out(path, std::ios::binary);
    uint64_t magic = 0x53454D57414C4B31ULL;  // "SEMWALK1"
    uint64_t num_nodes = 2;
    int32_t num_walks = 1, walk_length = 1;
    uint64_t seed = 42;
    uint8_t weighted = 0, pad[7] = {};
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&num_nodes), sizeof(num_nodes));
    out.write(reinterpret_cast<const char*>(&num_walks), sizeof(num_walks));
    out.write(reinterpret_cast<const char*>(&walk_length),
              sizeof(walk_length));
    out.write(reinterpret_cast<const char*>(&seed), sizeof(seed));
    out.write(reinterpret_cast<const char*>(&weighted), sizeof(weighted));
    out.write(reinterpret_cast<const char*>(pad), sizeof(pad));
    NodeId steps[2] = {1, 0};
    out.write(reinterpret_cast<const char*>(steps), sizeof(steps));
  }
  auto result = WalkIndex::Load(path, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("format version 1"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("rebuild"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WalkIndexIo, RejectsTruncatedAndOversizedPayloads) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 4;
  opt.walk_length = 5;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_walks_sz.bin";
  ASSERT_TRUE(index.Save(path).ok());

  // Read the intact bytes back, then write corrupted variants.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - sizeof(NodeId)));
  }
  EXPECT_FALSE(WalkIndex::Load(path, w.graph.num_nodes()).ok())
      << "truncated payload must be rejected";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    uint32_t junk = 0xDEADBEEF;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_FALSE(WalkIndex::Load(path, w.graph.num_nodes()).ok())
      << "trailing bytes must be rejected";
  std::remove(path.c_str());
}

TEST(WalkIndexIo, RejectsUnsupportedFutureVersion) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 2;
  opt.walk_length = 3;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_walks_ver.bin";
  ASSERT_TRUE(index.Save(path).ok());
  // Bump the format_version field (bytes 8..11, after the magic).
  {
    std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
    uint32_t version = 99;
    io.seekp(8);
    io.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  auto result = WalkIndex::Load(path, w.graph.num_nodes());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("version 99"), std::string::npos)
      << result.status().message();
  std::remove(path.c_str());
}

TEST(WalkIndexIo, MapServesQueriesZeroCopy) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 12;
  opt.walk_length = 6;
  WalkIndex original = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_walks_map.bin";
  ASSERT_TRUE(original.Save(path).ok());
  WalkIndex mapped = Unwrap(WalkIndex::Map(path, w.graph.num_nodes()));
  EXPECT_TRUE(mapped.mapped());
  // v2 artifact: both sections serve from the mapping, nothing owned.
  EXPECT_GT(mapped.MappedBytes(), 0u);
  EXPECT_EQ(mapped.OwnedBytes(), 0u);
  EXPECT_EQ(mapped.MemoryBytes(), original.MemoryBytes());
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      ASSERT_EQ(mapped.WalkLiveLength(v, k), original.WalkLiveLength(v, k));
      auto a = mapped.Walk(v, k);
      auto b = original.Walk(v, k);
      for (int s = 0; s < opt.walk_length; ++s) ASSERT_EQ(a[s], b[s]);
    }
  }
  std::remove(path.c_str());
}

TEST(WalkIndexIo, CopyOfMappedIndexOwnsItsStorage) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 6;
  opt.walk_length = 5;
  WalkIndex original = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_walks_cow.bin";
  ASSERT_TRUE(original.Save(path).ok());
  WalkIndex copy;
  {
    WalkIndex mapped = Unwrap(WalkIndex::Map(path, w.graph.num_nodes()));
    copy = mapped;  // deep copy promotes to owned storage...
  }                 // ...so it survives the mapping's destruction
  std::remove(path.c_str());
  EXPECT_FALSE(copy.mapped());
  EXPECT_EQ(copy.MappedBytes(), 0u);
  EXPECT_GT(copy.OwnedBytes(), 0u);
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      ASSERT_EQ(copy.WalkLiveLength(v, k), original.WalkLiveLength(v, k));
      auto a = copy.Walk(v, k);
      auto b = original.Walk(v, k);
      for (int s = 0; s < opt.walk_length; ++s) ASSERT_EQ(a[s], b[s]);
    }
  }
}

TEST(WalkIndexIo, MapRejectsWrongNodeCount) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 2;
  opt.walk_length = 3;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_walks_mapn.bin";
  ASSERT_TRUE(index.Save(path).ok());
  auto result = WalkIndex::Map(path, w.graph.num_nodes() + 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(WalkIndex, UniformProposalProbability) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  size_t deg = w.graph.InDegree(w.a0);
  ASSERT_GT(deg, 0u);
  EXPECT_DOUBLE_EQ(index.ProposalProb(w.graph, w.a0, 0),
                   1.0 / static_cast<double>(deg));
}

TEST(WalkIndex, WeightedProposalProbability) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.weighted = true;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  auto in = w.graph.InNeighbors(w.a0);
  double total = w.graph.TotalInWeight(w.a0);
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(index.ProposalProb(w.graph, w.a0, i),
                     in[i].weight / total);
  }
}

}  // namespace
}  // namespace semsim

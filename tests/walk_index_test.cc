#include "core/walk_index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(WalkIndex, DeterministicForSeed) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 10;
  opt.walk_length = 8;
  opt.seed = 99;
  WalkIndex a = WalkIndex::Build(w.graph, opt);
  WalkIndex b = WalkIndex::Build(w.graph, opt);
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto wa = a.Walk(v, k);
      auto wb = b.Walk(v, k);
      for (int s = 0; s < opt.walk_length; ++s) ASSERT_EQ(wa[s], wb[s]);
    }
  }
}

TEST(WalkIndex, StepsAreValidInNeighbors) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 20;
  opt.walk_length = 10;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto walk = index.Walk(v, k);
      NodeId cur = v;
      for (int s = 0; s < opt.walk_length; ++s) {
        if (walk[s] == kInvalidNode) {
          // Once dead, stays dead.
          for (int r = s; r < opt.walk_length; ++r) {
            ASSERT_EQ(walk[r], kInvalidNode);
          }
          break;
        }
        bool found = false;
        for (const Neighbor& nb : w.graph.InNeighbors(cur)) {
          if (nb.node == walk[s]) {
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found) << "step to non-in-neighbor";
        cur = walk[s];
      }
    }
  }
}

TEST(WalkIndex, DeadEndsPadWithInvalid) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");  // no in-neighbors
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  WalkIndexOptions opt;
  opt.num_walks = 3;
  opt.walk_length = 4;
  WalkIndex index = WalkIndex::Build(g, opt);
  for (int k = 0; k < 3; ++k) {
    auto wx = index.Walk(x, k);
    for (int s = 0; s < 4; ++s) EXPECT_EQ(wx[s], kInvalidNode);
    auto wy = index.Walk(y, k);
    EXPECT_EQ(wy[0], x);  // only in-neighbor
    EXPECT_EQ(wy[1], kInvalidNode);
  }
}

TEST(WalkIndex, MemoryAccounting) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 5;
  opt.walk_length = 7;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  EXPECT_EQ(index.MemoryBytes(),
            w.graph.num_nodes() * 5 * 7 * sizeof(NodeId));
  EXPECT_GE(index.build_seconds(), 0.0);
}

TEST(WalkIndex, UniformProposalProbability) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  size_t deg = w.graph.InDegree(w.a0);
  ASSERT_GT(deg, 0u);
  EXPECT_DOUBLE_EQ(index.ProposalProb(w.graph, w.a0, 0),
                   1.0 / static_cast<double>(deg));
}

TEST(WalkIndex, WeightedProposalProbability) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.weighted = true;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  auto in = w.graph.InNeighbors(w.a0);
  double total = w.graph.TotalInWeight(w.a0);
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(index.ProposalProb(w.graph, w.a0, i),
                     in[i].weight / total);
  }
}

}  // namespace
}  // namespace semsim

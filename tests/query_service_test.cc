#include "serving/query_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/future.h"
#include "core/batch_engine.h"
#include "core/single_source.h"
#include "core/walk_index.h"
#include "datasets/aminer_gen.h"
#include "datasets/figure1.h"
#include "serving/admission_queue.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

std::vector<NodePair> MakePairs(size_t num_nodes, size_t count) {
  std::vector<NodePair> pairs;
  Rng rng(17);
  for (size_t i = 0; i < count; ++i) {
    NodeId u = static_cast<NodeId>(i % num_nodes);
    NodeId v = static_cast<NodeId>(rng.NextIndex(num_nodes));
    pairs.push_back(NodePair{u, v});
  }
  return pairs;
}

struct Fixture {
  Dataset dataset;
  LinMeasure lin;
  WalkIndex index;
  BatchQueryEngine engine;

  explicit Fixture(Dataset d, int num_walks = 60, int walk_length = 10,
                   int threads = 2)
      : dataset(std::move(d)),
        lin(&dataset.context),
        index(WalkIndex::Build(dataset.graph,
                               WalkIndexOptions{num_walks, walk_length, 11,
                                                false})),
        engine(MakeEngine(threads)) {}

  BatchQueryEngine MakeEngine(int threads) {
    BatchQueryEngineOptions opt;
    opt.num_threads = threads;
    opt.query.mc = SemSimMcOptions{0.6, 0.05};
    return Unwrap(
        BatchQueryEngine::Create(&dataset.graph, &lin, &index, opt));
  }
};

Fixture AminerFixture() {
  AminerOptions opt;
  opt.num_authors = 220;
  opt.seed = 3;
  return Fixture(Unwrap(GenerateAminer(opt)));
}

// ---- CancelToken ----------------------------------------------------------

TEST(CancelToken, StartsInertAndRecordsObservation) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_EQ(token.polls(), 1u);
  EXPECT_FALSE(token.observed());
  EXPECT_TRUE(token.ToStatus().ok());

  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.observed());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelToken, ExpiredDeadlineFiresAndCancelWins) {
  CancelToken token;
  token.SetDeadline(CancelToken::Clock::now() - milliseconds(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(token.remaining().count(), 0);
  // An explicit Cancel takes precedence in the reported status.
  token.Cancel();
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelToken, FutureDeadlineDoesNotFireEarly) {
  CancelToken token;
  token.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_GT(token.remaining(), std::chrono::minutes(59));
}

// ---- Future / Promise / Latch ---------------------------------------------

TEST(Future, ResolvesAcrossThreads) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.Ready());
  EXPECT_FALSE(future.WaitFor(milliseconds(1)));
  std::thread producer([&] { promise.Set(42); });
  future.Wait();
  EXPECT_TRUE(future.Ready());
  EXPECT_EQ(future.Get(), 42);
  EXPECT_EQ(future.Take(), 42);
  producer.join();
  EXPECT_TRUE(promise.fulfilled());
}

TEST(Latch, ReleasesWaitersAtZero) {
  Latch latch(2);
  EXPECT_FALSE(latch.TryWait());
  latch.CountDown();
  EXPECT_FALSE(latch.TryWait());
  latch.CountDown();
  EXPECT_TRUE(latch.TryWait());
  latch.Wait();  // returns immediately
}

// ---- AdmissionQueue -------------------------------------------------------

TEST(AdmissionQueue, OverflowBoundaryIsExact) {
  AdmissionQueue<int> queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v)) << i;
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // rejected item is left untouched
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop(), 0);
  int refill = 3;
  EXPECT_TRUE(queue.TryPush(refill));  // slot freed by Pop
}

TEST(AdmissionQueue, CloseDrainsThenSignalsEnd) {
  AdmissionQueue<int> queue(4);
  int a = 1, b = 2;
  ASSERT_TRUE(queue.TryPush(a));
  ASSERT_TRUE(queue.TryPush(b));
  queue.Close();
  int c = 3;
  EXPECT_FALSE(queue.TryPush(c));  // closed queues admit nothing
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(AdmissionQueue, DrainNowReturnsEverythingQueued) {
  AdmissionQueue<int> queue(4);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(queue.TryPush(v));
  }
  std::vector<int> drained = queue.DrainNow();
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 0u);
}

// ---- Cooperative cancellation inside the estimators -----------------------

TEST(Cancellation, PreFiredTokenIsObservedMidSweep) {
  Fixture f = AminerFixture();
  CancelToken token;
  token.Cancel();
  SemSimMcOptions mc{0.6, 0.05};
  mc.cancel = &token;

  // Pair path: the per-walk poll sees the fired token on walk 0 and the
  // loop contributes nothing.
  SemSimMcEstimator estimator(&f.dataset.graph, &f.lin, &f.index);
  McQueryStats stats;
  estimator.Query(1, 2, mc, &stats);
  EXPECT_TRUE(token.observed());
  EXPECT_EQ(stats.met_walks, 0);

  // Sweep path: same token, same observation guarantee.
  size_t polls_before = token.polls();
  SingleSourceIndex inverted =
      SingleSourceIndex::Build(f.index, f.dataset.graph.num_nodes());
  std::vector<double> row = inverted.SemSimFrom(1, estimator, mc);
  EXPECT_GT(token.polls(), polls_before);
  // The sweep unwound before accumulating: only the self-score survives.
  for (NodeId v = 0; v < row.size(); ++v) {
    if (v != 1) {
      EXPECT_EQ(row[v], 0.0) << "v=" << v;
    }
  }
}

TEST(Cancellation, ParallelForSkipsChunksOnceFired) {
  ThreadPool pool(4);
  CancelToken token;
  token.Cancel();
  std::atomic<int> executed{0};
  pool.ParallelFor(0, 1000,
                   [&](size_t, size_t) { executed.fetch_add(1); }, &token);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_TRUE(token.observed());
}

// ---- QueryService ---------------------------------------------------------

TEST(QueryService, CreateValidatesOptions) {
  Fixture f = AminerFixture();
  EXPECT_EQ(QueryService::Create(nullptr).status().code(),
            StatusCode::kInvalidArgument);
  QueryServiceOptions bad;
  bad.queue_capacity = 0;
  EXPECT_FALSE(QueryService::Create(&f.engine, bad).ok());
  bad = QueryServiceOptions{};
  bad.min_walk_budget = 0;
  EXPECT_FALSE(QueryService::Create(&f.engine, bad).ok());
  bad = QueryServiceOptions{};
  bad.degradation_headroom = 1.5;
  EXPECT_FALSE(QueryService::Create(&f.engine, bad).ok());
  bad = QueryServiceOptions{};
  bad.band_delta = 1.0;
  EXPECT_FALSE(QueryService::Create(&f.engine, bad).ok());
  bad = QueryServiceOptions{};
  bad.cost_ema_alpha = 0.0;
  EXPECT_FALSE(QueryService::Create(&f.engine, bad).ok());
  bad = QueryServiceOptions{};
  bad.initial_seconds_per_item_walk = 0.0;
  EXPECT_FALSE(QueryService::Create(&f.engine, bad).ok());
  EXPECT_TRUE(QueryService::Create(&f.engine).ok());
}

// The determinism contract: an undegraded service response is
// bit-identical to the equivalent direct engine call, for every request
// kind.
TEST(QueryService, UndegradedResponsesMatchEngineBitForBit) {
  Fixture f = AminerFixture();
  QueryService service = Unwrap(QueryService::Create(&f.engine));

  QueryRequest pairs_req;
  pairs_req.kind = QueryRequestKind::kPairs;
  pairs_req.pairs = MakePairs(f.dataset.graph.num_nodes(), 120);
  QueryRequest sweep_req;
  sweep_req.kind = QueryRequestKind::kSingleSource;
  sweep_req.sources = {0, 3, 7};
  QueryRequest topk_req;
  topk_req.kind = QueryRequestKind::kTopK;
  topk_req.sources = {1, 4};
  topk_req.k = 5;

  Future<QueryResponse> pf = service.Submit(pairs_req);
  Future<QueryResponse> sf = service.Submit(sweep_req);
  Future<QueryResponse> tf = service.Submit(topk_req);

  const QueryResponse& pr = pf.Get();
  ASSERT_TRUE(pr.ok()) << pr.status.ToString();
  EXPECT_EQ(pr.scores, f.engine.QueryBatch(pairs_req.pairs).values);
  EXPECT_EQ(pr.effective_walk_budget, pr.full_walk_budget);
  EXPECT_EQ(pr.full_walk_budget, f.index.num_walks());
  EXPECT_FALSE(pr.degraded);
  EXPECT_GT(pr.error_band, 0.0);
  EXPECT_GT(pr.stats.met_walks, 0);
  EXPECT_GE(pr.queue_seconds, 0.0);
  EXPECT_GT(pr.run_seconds, 0.0);

  const QueryResponse& sr = sf.Get();
  ASSERT_TRUE(sr.ok()) << sr.status.ToString();
  EXPECT_EQ(sr.rows, f.engine.SingleSourceBatch(sweep_req.sources).values);

  const QueryResponse& tr = tf.Get();
  ASSERT_TRUE(tr.ok()) << tr.status.ToString();
  auto want_topk = f.engine.TopKBatch(topk_req.sources, topk_req.k).values;
  ASSERT_EQ(tr.topk.size(), want_topk.size());
  for (size_t i = 0; i < want_topk.size(); ++i) {
    ASSERT_EQ(tr.topk[i].size(), want_topk[i].size());
    for (size_t j = 0; j < want_topk[i].size(); ++j) {
      EXPECT_EQ(tr.topk[i][j].node, want_topk[i][j].node);
      EXPECT_EQ(tr.topk[i][j].score, want_topk[i][j].score);
    }
  }
}

// A pessimistic cost prior forces the projection over any realistic
// deadline, so the degradation decision is deterministic: the budget
// collapses to the floor, and the degraded values are bit-identical to
// a direct engine call with the same walk_budget override.
TEST(QueryService, DegradedRunShrinksBudgetAndStaysDeterministic) {
  Fixture f = AminerFixture();
  QueryServiceOptions sopt;
  sopt.min_walk_budget = 10;
  sopt.initial_seconds_per_item_walk = 1.0;  // ludicrous prior: ~1s per walk
  QueryService service = Unwrap(QueryService::Create(&f.engine, sopt));

  QueryRequest req;
  req.kind = QueryRequestKind::kPairs;
  req.pairs = MakePairs(f.dataset.graph.num_nodes(), 60);
  req.timeout = std::chrono::seconds(30);  // plenty of real time

  QueryResponse resp = service.Submit(req).Take();
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.effective_walk_budget, sopt.min_walk_budget);
  EXPECT_EQ(resp.full_walk_budget, f.index.num_walks());

  SemSimMcOptions budgeted = f.engine.query_options().mc;
  budgeted.walk_budget = sopt.min_walk_budget;
  EXPECT_EQ(resp.scores, f.engine.QueryBatch(req.pairs, budgeted).values);

  // The degraded band is wider than the full-budget band would be.
  double full_band =
      WalkBudgetErrorBand(f.index.num_walks(), sopt.band_delta,
                          f.dataset.graph.num_nodes());
  EXPECT_GT(resp.error_band, full_band);
}

// Same infeasible projection, degradation disabled: the request fails
// upfront with kDeadlineExceeded instead of running at a reduced budget.
TEST(QueryService, InfeasibleDeadlineWithoutDegradationFailsFast) {
  Fixture f = AminerFixture();
  QueryServiceOptions sopt;
  sopt.initial_seconds_per_item_walk = 1.0;
  QueryService service = Unwrap(QueryService::Create(&f.engine, sopt));

  QueryRequest req;
  req.kind = QueryRequestKind::kPairs;
  req.pairs = MakePairs(f.dataset.graph.num_nodes(), 60);
  req.timeout = std::chrono::seconds(30);
  req.allow_degradation = false;

  QueryResponse resp = service.Submit(req).Take();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.scores.empty());
  EXPECT_EQ(resp.effective_walk_budget, 0);
  EXPECT_FALSE(resp.degraded);
}

// A deadline that expires while the request is still queued fails fast
// without reaching the engine.
TEST(QueryService, DeadlineExpiredInQueueFailsBeforeRunning) {
  Fixture f = AminerFixture();
  QueryService service = Unwrap(QueryService::Create(&f.engine));

  // A long blocker request keeps the scheduler busy...
  QueryRequest blocker;
  blocker.kind = QueryRequestKind::kSingleSource;
  for (NodeId v = 0; v < f.dataset.graph.num_nodes(); ++v) {
    blocker.sources.push_back(v);
  }
  Future<QueryResponse> blocked = service.Submit(blocker);

  // ...while a nanosecond-deadline request ages out behind it.
  QueryRequest doomed;
  doomed.kind = QueryRequestKind::kPairs;
  doomed.pairs = MakePairs(f.dataset.graph.num_nodes(), 40);
  doomed.timeout = nanoseconds(1);
  QueryResponse resp = service.Submit(doomed).Take();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.scores.empty());
  EXPECT_EQ(resp.effective_walk_budget, 0);
  EXPECT_GT(resp.full_walk_budget, 0);  // reported even on failure
  EXPECT_TRUE(blocked.Take().ok());
}

TEST(QueryService, CallerTokenCancelsQueuedRequest) {
  Fixture f = AminerFixture();
  QueryService service = Unwrap(QueryService::Create(&f.engine));

  QueryRequest blocker;
  blocker.kind = QueryRequestKind::kSingleSource;
  for (int rep = 0; rep < 3; ++rep) {
    for (NodeId v = 0; v < f.dataset.graph.num_nodes(); ++v) {
      blocker.sources.push_back(v);
    }
  }
  Future<QueryResponse> blocked = service.Submit(blocker);

  auto token = std::make_shared<CancelToken>();
  QueryRequest victim;
  victim.kind = QueryRequestKind::kPairs;
  victim.pairs = MakePairs(f.dataset.graph.num_nodes(), 40);
  Future<QueryResponse> cancelled = service.Submit(victim, token);
  token->Cancel();

  QueryResponse resp = cancelled.Take();
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(resp.scores.empty());
  EXPECT_TRUE(token->observed());
  EXPECT_TRUE(blocked.Take().ok());
}

// Deterministic overflow: queue_capacity=1 plus a scheduler pinned on a
// caller-controlled gate means exactly one queued slot. The next submit
// after the slot fills must reject with kResourceExhausted immediately.
TEST(QueryService, FullAdmissionQueueRejectsImmediately) {
  Fixture f = AminerFixture();
  QueryServiceOptions sopt;
  sopt.queue_capacity = 1;
  QueryService service = Unwrap(QueryService::Create(&f.engine, sopt));

  // Occupy the scheduler long enough to deterministically fill the
  // queue behind it: several full single-source sweeps of the graph
  // (the caller token cuts it short once the rejection is observed).
  QueryRequest blocker;
  blocker.kind = QueryRequestKind::kSingleSource;
  for (int rep = 0; rep < 5; ++rep) {
    for (NodeId v = 0; v < f.dataset.graph.num_nodes(); ++v) {
      blocker.sources.push_back(v);
    }
  }
  auto blocker_token = std::make_shared<CancelToken>();
  Future<QueryResponse> running = service.Submit(blocker, blocker_token);

  // Wait for the scheduler to pop the blocker: once the queue is empty
  // and the blocker is executing, exactly one admission slot is free.
  while (service.queue_depth() != 0 && !running.Ready()) {
    std::this_thread::yield();
  }
  ASSERT_FALSE(running.Ready()) << "blocker finished before the test filled "
                                   "the queue";

  QueryRequest small;
  small.kind = QueryRequestKind::kPairs;
  small.pairs = MakePairs(f.dataset.graph.num_nodes(), 10);
  Future<QueryResponse> queued = service.Submit(small);
  ASSERT_EQ(service.queue_depth(), 1u);

  // The queue now holds one admitted request → the next one bounces.
  QueryResponse rejected = service.Submit(small).Take();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status.ToString().find("capacity 1"), std::string::npos)
      << rejected.status.ToString();

  blocker_token->Cancel();  // unblock quickly
  EXPECT_EQ(running.Take().status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(queued.Take().ok());
}

TEST(QueryService, ShutdownFailsQueuedRequestsAndStopsAdmission) {
  Fixture f = AminerFixture();
  QueryService service = Unwrap(QueryService::Create(&f.engine));

  QueryRequest blocker;
  blocker.kind = QueryRequestKind::kSingleSource;
  for (NodeId v = 0; v < f.dataset.graph.num_nodes(); ++v) {
    blocker.sources.push_back(v);
  }
  Future<QueryResponse> running = service.Submit(blocker);
  QueryRequest queued_req;
  queued_req.kind = QueryRequestKind::kPairs;
  queued_req.pairs = MakePairs(f.dataset.graph.num_nodes(), 20);
  std::vector<Future<QueryResponse>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(service.Submit(queued_req));

  service.Shutdown();
  service.Shutdown();  // idempotent

  // Whatever had not started when Shutdown hit resolves kCancelled; the
  // in-flight request may legitimately have completed first.
  for (Future<QueryResponse>& fut : queued) {
    QueryResponse resp = fut.Take();
    EXPECT_TRUE(resp.ok() ||
                resp.status.code() == StatusCode::kCancelled)
        << resp.status.ToString();
  }
  running.Wait();

  QueryResponse late = service.Submit(queued_req).Take();
  EXPECT_EQ(late.status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace semsim

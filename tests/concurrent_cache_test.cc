#include "core/concurrent_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace semsim {
namespace {

// The deterministic "expensive function" the cache is assumed to front.
double PairValue(NodeId u, NodeId v) {
  NodeId lo = u <= v ? u : v;
  NodeId hi = u <= v ? v : u;
  return static_cast<double>(lo) * 1000.0 + hi + 0.25;
}

TEST(ConcurrentPairCache, InsertLookupRoundTrip) {
  ConcurrentPairCache cache(1024);
  double value = 0;
  EXPECT_FALSE(cache.Lookup(1, 2, &value));
  cache.Insert(1, 2, 3.5);
  ASSERT_TRUE(cache.Lookup(1, 2, &value));
  EXPECT_EQ(value, 3.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ConcurrentPairCache, KeyIsUnordered) {
  ConcurrentPairCache cache(1024);
  cache.Insert(7, 3, 1.25);
  double value = 0;
  ASSERT_TRUE(cache.Lookup(3, 7, &value));
  EXPECT_EQ(value, 1.25);
  // Refreshing through the reversed orientation hits the same slot.
  cache.Insert(3, 7, 2.5);
  ASSERT_TRUE(cache.Lookup(7, 3, &value));
  EXPECT_EQ(value, 2.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ConcurrentPairCache, CapacityStaysBounded) {
  ConcurrentPairCache cache(/*capacity=*/256, /*num_shards=*/4);
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v = u; v < 200; ++v) cache.Insert(u, v, PairValue(u, v));
  }
  // Far more inserts than slots: displacement keeps occupancy within the
  // fixed allocation and every surviving entry still holds its value.
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GE(cache.capacity(), 256u);
  size_t survivors = 0;
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v = u; v < 200; ++v) {
      double value = 0;
      if (cache.Lookup(u, v, &value)) {
        ++survivors;
        ASSERT_EQ(value, PairValue(u, v));
      }
    }
  }
  EXPECT_GT(survivors, 0u);
  EXPECT_LE(survivors, cache.capacity());
}

TEST(ConcurrentPairCache, CountersTrackHitsAndMisses) {
  ConcurrentPairCache cache(1024);
  double value = 0;
  cache.Lookup(1, 2, &value);
  cache.Insert(1, 2, 1.0);
  cache.Lookup(1, 2, &value);
  cache.Lookup(1, 2, &value);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 2.0 / 3.0, 1e-12);
  cache.ResetCounters();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(ConcurrentPairCache, ClearEmptiesTheTable) {
  ConcurrentPairCache cache(1024);
  cache.Insert(1, 2, 1.0);
  cache.Insert(3, 4, 2.0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  double value = 0;
  EXPECT_FALSE(cache.Lookup(1, 2, &value));
}

// Many threads hammering overlapping pairs: every successful lookup must
// return exactly the deterministic value for its pair (a torn or
// misfiled entry would surface as a wrong value). Run under TSan in the
// sanitizer CI job.
TEST(ConcurrentPairCache, ConcurrentOverlappingStress) {
  ConcurrentPairCache cache(1 << 14);
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  constexpr NodeId kUniverse = 64;  // small → heavy overlap across threads
  std::vector<std::thread> threads;
  std::vector<int> wrong(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (NodeId u = 0; u < kUniverse; ++u) {
          for (NodeId v = 0; v < kUniverse; ++v) {
            double value = 0;
            if (cache.Lookup(u, v, &value)) {
              if (value != PairValue(u, v)) ++wrong[t];
            } else {
              cache.Insert(u, v, PairValue(u, v));
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(wrong[t], 0) << "thread " << t;
  EXPECT_GT(cache.hits(), 0u);
}

TEST(CachedSemanticMeasure, MatchesWrappedMeasureBitwise) {
  auto w = testutil::MakeSmallWorld();
  LinMeasure lin(&w.context);
  CachedSemanticMeasure cached(&lin, 1 << 12);
  size_t n = w.graph.num_nodes();
  // Two passes: cold (fills) and warm (serves) — both must equal the
  // wrapped measure exactly, and the name must pass through.
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        ASSERT_EQ(cached.Sim(u, v), lin.Sim(u, v))
            << "pass=" << pass << " u=" << u << " v=" << v;
      }
    }
  }
  EXPECT_EQ(cached.name(), lin.name());
  EXPECT_GT(cached.cache().hits(), 0u);
}

TEST(CachedSemanticMeasure, ConcurrentReadersAgree) {
  auto w = testutil::MakeSmallWorld();
  LinMeasure lin(&w.context);
  CachedSemanticMeasure cached(&lin, 1 << 12);
  size_t n = w.graph.num_nodes();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> wrong(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        for (NodeId u = 0; u < n; ++u) {
          for (NodeId v = 0; v < n; ++v) {
            if (cached.Sim(u, v) != lin.Sim(u, v)) ++wrong[t];
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(wrong[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace semsim

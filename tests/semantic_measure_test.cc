#include "taxonomy/semantic_measure.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

// Shared fixture world for the parameterized constraint suite. The
// SemanticContext must outlive the measures.
struct MeasureCase {
  const char* name;
  std::function<std::unique_ptr<SemanticMeasure>(const SemanticContext*)>
      make;
};

class MeasureConstraintTest : public ::testing::TestWithParam<MeasureCase> {
 protected:
  static void SetUpTestSuite() { world_ = new testutil::SmallWorld(MakeSmallWorld()); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static testutil::SmallWorld* world_;
};

testutil::SmallWorld* MeasureConstraintTest::world_ = nullptr;

TEST_P(MeasureConstraintTest, SatisfiesPaperConstraints) {
  auto measure = GetParam().make(&world_->context);
  Rng rng(123);
  Status s = ValidateSemanticMeasure(*measure, world_->graph.num_nodes(), rng,
                                     2000);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(MeasureConstraintTest, SameCategorySimilarThanCrossCategory) {
  auto measure = GetParam().make(&world_->context);
  if (measure->name() == "Constant") GTEST_SKIP();
  // a0,a1 share CatA; a0,b0 cross categories.
  EXPECT_GT(measure->Sim(world_->a0, world_->a1),
            measure->Sim(world_->a0, world_->b0));
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, MeasureConstraintTest,
    ::testing::Values(
        MeasureCase{"Lin",
                    [](const SemanticContext* c) {
                      return std::unique_ptr<SemanticMeasure>(
                          std::make_unique<LinMeasure>(c));
                    }},
        MeasureCase{"Resnik",
                    [](const SemanticContext* c) {
                      return std::unique_ptr<SemanticMeasure>(
                          std::make_unique<ResnikMeasure>(c));
                    }},
        MeasureCase{"WuPalmer",
                    [](const SemanticContext* c) {
                      return std::unique_ptr<SemanticMeasure>(
                          std::make_unique<WuPalmerMeasure>(c));
                    }},
        MeasureCase{"Path",
                    [](const SemanticContext* c) {
                      return std::unique_ptr<SemanticMeasure>(
                          std::make_unique<PathMeasure>(c));
                    }},
        MeasureCase{"JiangConrath",
                    [](const SemanticContext* c) {
                      return std::unique_ptr<SemanticMeasure>(
                          std::make_unique<JiangConrathMeasure>(c));
                    }},
        MeasureCase{"Constant",
                    [](const SemanticContext*) {
                      return std::unique_ptr<SemanticMeasure>(
                          std::make_unique<ConstantMeasure>());
                    }}),
    [](const ::testing::TestParamInfo<MeasureCase>& info) {
      return info.param.name;
    });

TEST(LinMeasure, ExactValueOnKnownTree) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  // a0, a1 are leaves (IC=1) under CatA. Seco IC of CatA in an 8-concept
  // taxonomy with 3 descendants: 1 - ln(4)/ln(8).
  double ic_cat_a = 1.0 - std::log(4.0) / std::log(8.0);
  EXPECT_NEAR(lin.Sim(w.a0, w.a1), 2.0 * ic_cat_a / 2.0, 1e-12);
}

TEST(LinMeasure, AncestorDescendantPair) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  // LCA(CatA, a0) = CatA: Lin = 2·IC(CatA)/(IC(CatA) + 1).
  double ic_cat_a = 1.0 - std::log(4.0) / std::log(8.0);
  EXPECT_NEAR(lin.Sim(w.cat_a, w.a0), 2.0 * ic_cat_a / (ic_cat_a + 1.0),
              1e-12);
}

TEST(ValidateSemanticMeasure, CatchesViolations) {
  // A measure violating max self-similarity.
  class Broken : public SemanticMeasure {
   public:
    double Sim(NodeId u, NodeId v) const override {
      return u == v ? 0.5 : 0.3;
    }
    std::string_view name() const override { return "Broken"; }
  };
  Broken broken;
  Rng rng(5);
  Status s = ValidateSemanticMeasure(broken, 10, rng, 100);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  // A measure violating the value range (returns 0).
  class Zero : public SemanticMeasure {
   public:
    double Sim(NodeId u, NodeId v) const override { return u == v ? 1.0 : 0.0; }
    std::string_view name() const override { return "Zero"; }
  };
  Zero zero;
  Status s2 = ValidateSemanticMeasure(zero, 10, rng, 200);
  EXPECT_FALSE(s2.ok());

  // An asymmetric measure.
  class Asym : public SemanticMeasure {
   public:
    double Sim(NodeId u, NodeId v) const override {
      if (u == v) return 1.0;
      return u < v ? 0.4 : 0.6;
    }
    std::string_view name() const override { return "Asym"; }
  };
  Asym asym;
  Status s3 = ValidateSemanticMeasure(asym, 10, rng, 200);
  EXPECT_FALSE(s3.ok());
}

TEST(SemanticContext, FromHinDerivesTaxonomyFromIsAEdges) {
  // Directed is-a chain: leaf -> mid -> top.
  HinBuilder b;
  NodeId top = b.AddNode("top", "concept");
  NodeId mid = b.AddNode("mid", "concept");
  NodeId leaf1 = b.AddNode("leaf1", "entity");
  NodeId leaf2 = b.AddNode("leaf2", "entity");
  ASSERT_TRUE(b.AddEdge(mid, top, "is_a", 1).ok());
  ASSERT_TRUE(b.AddEdge(leaf1, mid, "is_a", 1).ok());
  ASSERT_TRUE(b.AddEdge(leaf2, mid, "is_a", 1).ok());
  ASSERT_TRUE(b.AddEdge(leaf1, leaf2, "rel", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  SemanticContext ctx = Unwrap(SemanticContext::FromHin(g, "is_a"));

  EXPECT_EQ(ctx.taxonomy().parent(ctx.concept_of(leaf1)),
            ctx.concept_of(mid));
  LinMeasure lin(&ctx);
  EXPECT_GT(lin.Sim(leaf1, leaf2), lin.Sim(leaf1, top));
  EXPECT_DOUBLE_EQ(lin.Sim(leaf1, leaf1), 1.0);
}

TEST(SemanticContext, FromHinRejectsMissingLabel) {
  HinBuilder b;
  b.AddNode("x", "t");
  Hin g = Unwrap(std::move(b).Build());
  EXPECT_FALSE(SemanticContext::FromHin(g, "is_a").ok());
}

TEST(SemanticContext, SetIcValidatesRange) {
  auto w = MakeSmallWorld();
  EXPECT_TRUE(w.context.SetIc("CatA", 0.5).ok());
  EXPECT_FALSE(w.context.SetIc("CatA", 0.0).ok());
  EXPECT_FALSE(w.context.SetIc("CatA", 1.5).ok());
  EXPECT_FALSE(w.context.SetIc("ghost", 0.5).ok());
}

TEST(SemanticContext, FromTaxonomyWithIcValidates) {
  TaxonomyBuilder b;
  b.AddConcept("root");
  Taxonomy t = Unwrap(std::move(b).Build());
  // Wrong IC vector length.
  EXPECT_FALSE(SemanticContext::FromTaxonomyWithIc(
                   Unwrap([&] {
                     TaxonomyBuilder bb;
                     bb.AddConcept("r");
                     return std::move(bb).Build();
                   }()),
                   {0}, {0.5, 0.5})
                   .ok());
  // Out-of-range concept mapping.
  TaxonomyBuilder b2;
  b2.AddConcept("r");
  EXPECT_FALSE(SemanticContext::FromTaxonomy(Unwrap(std::move(b2).Build()),
                                             {5})
                   .ok());
}

}  // namespace
}  // namespace semsim

#include "core/iterative.h"

#include <gtest/gtest.h>

#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeJehWidomWorld;
using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(SimRankIterative, MatchesJehWidomExample) {
  // Jeh & Widom report, for c=0.8 on their university example,
  // sim(ProfA, ProfB) ≈ 0.414, sim(StudentA, StudentB) ≈ 0.331.
  auto w = MakeJehWidomWorld();
  ScoreMatrix s = Unwrap(ComputeSimRank(w.graph, 0.8, 50, nullptr));
  EXPECT_NEAR(s.at(w.prof_a, w.prof_b), 0.414, 0.005);
  EXPECT_NEAR(s.at(w.student_a, w.student_b), 0.331, 0.005);
}

TEST(SimRankIterative, SelfSimilarityIsOne) {
  auto w = MakeSmallWorld();
  ScoreMatrix s = Unwrap(ComputeSimRank(w.graph, 0.6, 8, nullptr));
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(s.at(v, v), 1.0);
  }
}

TEST(SimRankIterative, NodeWithNoInNeighborsScoresZero) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  NodeId z = b.AddNode("z", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 1).ok());
  ASSERT_TRUE(b.AddEdge(x, z, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  ScoreMatrix s = Unwrap(ComputeSimRank(g, 0.6, 5, nullptr));
  // x has no in-neighbors: every pair involving x scores 0.
  EXPECT_DOUBLE_EQ(s.at(x, y), 0.0);
  EXPECT_DOUBLE_EQ(s.at(x, z), 0.0);
  // y and z share the single in-neighbor x: first iteration gives c.
  EXPECT_NEAR(s.at(y, z), 0.6, 1e-12);
}

TEST(SemSimIterative, Theorem23Properties) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  size_t n = w.graph.num_nodes();
  ScoreMatrix prev = Unwrap(ComputeSemSim(w.graph, lin, 0.6, 1, nullptr));
  for (int k = 2; k <= 8; ++k) {
    ScoreMatrix cur = Unwrap(ComputeSemSim(w.graph, lin, 0.6, k, nullptr));
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_DOUBLE_EQ(cur.at(u, u), 1.0);  // max self-similarity
      for (NodeId v = 0; v < u; ++v) {
        // Symmetry.
        EXPECT_DOUBLE_EQ(cur.at(u, v), cur.at(v, u));
        // Monotone, in [0,1].
        EXPECT_GE(cur.at(u, v) + 1e-12, prev.at(u, v));
        EXPECT_GE(cur.at(u, v), 0.0);
        EXPECT_LE(cur.at(u, v), 1.0);
        // Prop 2.4: bounded per-iteration growth.
        EXPECT_LE(cur.at(u, v) - prev.at(u, v),
                  lin.Sim(u, v) * std::pow(0.6, k) + 1e-12);
      }
    }
    prev = std::move(cur);
  }
}

TEST(SemSimIterative, BoundedBySemantics) {
  // Prop. 2.5: sim(u,v) <= sem(u,v).
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  ScoreMatrix s = Unwrap(ComputeSemSim(w.graph, lin, 0.6, 12, nullptr));
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      EXPECT_LE(s.at(u, v), lin.Sim(u, v) + 1e-12)
          << "pair (" << u << "," << v << ")";
    }
  }
}

TEST(SemSimIterative, ConstantSemanticsUnweightedEqualsSimRank) {
  // With sem ≡ 1 and weights ignored, Eq. 1 degenerates to SimRank.
  auto w = MakeSmallWorld();
  ConstantMeasure ones;
  IterativeOptions opt;
  opt.decay = 0.6;
  opt.max_iterations = 10;
  opt.use_weights = false;
  opt.semantic = &ones;
  ScoreMatrix sem = Unwrap(ComputeIterativeScores(w.graph, opt, nullptr));
  ScoreMatrix sr = Unwrap(ComputeSimRank(w.graph, 0.6, 10, nullptr));
  EXPECT_LT(sem.MaxAbsDifference(sr), 1e-12);
}

TEST(SemSimIterative, ConvergenceTraceShrinksGeometrically) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  std::vector<IterationDelta> trace;
  Unwrap(ComputeSemSim(w.graph, lin, 0.6, 8, &trace));
  ASSERT_EQ(trace.size(), 8u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i].max_abs_diff, trace[i - 1].max_abs_diff + 1e-12);
  }
  EXPECT_LT(trace.back().max_abs_diff, 1e-2);
}

TEST(SemSimIterative, RejectsBadDecay) {
  auto w = MakeSmallWorld();
  IterativeOptions opt;
  opt.decay = 1.0;
  EXPECT_FALSE(ComputeIterativeScores(w.graph, opt, nullptr).ok());
  opt.decay = 0.0;
  EXPECT_FALSE(ComputeIterativeScores(w.graph, opt, nullptr).ok());
  opt.decay = -0.3;
  EXPECT_FALSE(ComputeIterativeScores(w.graph, opt, nullptr).ok());
}

TEST(SemSimIterative, PartialSumsMatchesNaiveSweep) {
  // The Lizorkin-style factorization must reproduce the naive O(n²·d²)
  // sweep up to floating-point summation order.
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  for (bool use_weights : {true, false}) {
    for (const SemanticMeasure* sem :
         std::initializer_list<const SemanticMeasure*>{&lin, nullptr}) {
      IterativeOptions opt;
      opt.decay = 0.6;
      opt.max_iterations = 7;
      opt.use_weights = use_weights;
      opt.semantic = sem;
      opt.use_partial_sums = false;
      ScoreMatrix naive = Unwrap(ComputeIterativeScores(w.graph, opt));
      opt.use_partial_sums = true;
      ScoreMatrix fast = Unwrap(ComputeIterativeScores(w.graph, opt));
      EXPECT_LT(fast.MaxAbsDifference(naive), 1e-12)
          << "weights=" << use_weights << " sem=" << (sem != nullptr);
    }
  }
}

TEST(SemSimIterative, PartialSumsHandlesIsolatedNodes) {
  HinBuilder b;
  NodeId iso = b.AddNode("iso", "t");
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(iso, x, "e", 1).ok());
  ASSERT_TRUE(b.AddEdge(iso, y, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  IterativeOptions opt;
  opt.decay = 0.6;
  opt.max_iterations = 4;
  opt.use_partial_sums = true;
  ScoreMatrix s = Unwrap(ComputeIterativeScores(g, opt));
  EXPECT_DOUBLE_EQ(s.at(iso, x), 0.0);  // iso has no in-neighbors
  EXPECT_NEAR(s.at(x, y), 0.6, 1e-12);
}

TEST(DecayUpperBound, PositiveAndAtMostOne) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  double bound = ComputeDecayUpperBound(w.graph, lin);
  EXPECT_GT(bound, 0.0);
  EXPECT_LE(bound, 1.0);
}

TEST(DecayUpperBound, ConstantSemanticsGivesWeightProduct) {
  // Two nodes, each with a single in-edge of weight 0.5: N = 0.25 is the
  // minimum over pairs.
  HinBuilder b;
  NodeId s = b.AddNode("s", "t");
  NodeId u = b.AddNode("u", "t");
  NodeId v = b.AddNode("v", "t");
  ASSERT_TRUE(b.AddEdge(s, u, "e", 0.5).ok());
  ASSERT_TRUE(b.AddEdge(s, v, "e", 0.5).ok());
  Hin g = Unwrap(std::move(b).Build());
  ConstantMeasure ones;
  EXPECT_NEAR(ComputeDecayUpperBound(g, ones), 0.25, 1e-12);
}

}  // namespace
}  // namespace semsim

#include "common/future.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace semsim {
namespace {

TEST(Future, SetThenGet) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.Ready());
  EXPECT_FALSE(promise.fulfilled());
  promise.Set(42);
  EXPECT_TRUE(promise.fulfilled());
  EXPECT_TRUE(future.Ready());
  EXPECT_EQ(future.Get(), 42);
  EXPECT_EQ(future.Get(), 42) << "Get is repeatable";
}

TEST(Future, DefaultConstructedIsInvalid) {
  Future<int> future;
  EXPECT_FALSE(future.valid());
}

TEST(Future, CrossThreadGetBlocksUntilSet) {
  Promise<std::string> promise;
  Future<std::string> future = promise.GetFuture();
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    EXPECT_EQ(future.Get(), "delivered");
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load()) << "Get must block until the value arrives";
  promise.Set("delivered");
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(Future, WaitForTimesOutThenSucceeds) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_FALSE(future.WaitFor(std::chrono::milliseconds(5)));
  promise.Set(7);
  EXPECT_TRUE(future.WaitFor(std::chrono::milliseconds(5)));
}

TEST(Future, ManyConsumersSeeTheSameValue) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  std::vector<std::thread> consumers;
  std::atomic<int> sum{0};
  for (int i = 0; i < 4; ++i) {
    Future<int> copy = future;  // copies share the state
    consumers.emplace_back([&sum, copy] { sum.fetch_add(copy.Get()); });
  }
  promise.Set(5);
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(sum.load(), 20);
}

TEST(Future, TakeMovesTheValueOut) {
  Promise<std::vector<int>> promise;
  Future<std::vector<int>> future = promise.GetFuture();
  promise.Set({1, 2, 3});
  std::vector<int> value = future.Take();
  EXPECT_EQ(value.size(), 3u);
}

TEST(Future, FutureOutlivesThePromise) {
  Future<int> future;
  {
    Promise<int> promise;
    future = promise.GetFuture();
    promise.Set(11);
  }  // promise destroyed; the shared state lives on in the future
  EXPECT_EQ(future.Get(), 11);
}

using FutureDeathTest = ::testing::Test;

TEST(FutureDeathTest, DoubleSetAborts) {
  // Exactly-once resolution is load-bearing for the serving stack: a
  // double Set means two code paths both think they own the response.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Promise<int> promise;
  promise.Set(1);
  EXPECT_DEATH(promise.Set(2), "promise set twice");
}

TEST(Latch, CountDownReleasesWaiters) {
  Latch latch(2);
  EXPECT_FALSE(latch.TryWait());
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
  EXPECT_TRUE(latch.TryWait());
}

TEST(Latch, ZeroLatchIsAlreadyOpen) {
  Latch latch(0);
  EXPECT_TRUE(latch.TryWait());
  latch.Wait();  // must not block
}

}  // namespace
}  // namespace semsim

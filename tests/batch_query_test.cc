#include "core/batch_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/mc_semsim.h"
#include "core/single_source.h"
#include "core/walk_index.h"
#include "datasets/aminer_gen.h"
#include "datasets/figure1.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

// Deterministic random-ish query pairs covering every node at least once.
std::vector<NodePair> MakePairs(size_t num_nodes, size_t count) {
  std::vector<NodePair> pairs;
  Rng rng(91);
  for (size_t i = 0; i < count; ++i) {
    NodeId u = static_cast<NodeId>(i % num_nodes);
    NodeId v = static_cast<NodeId>(rng.NextIndex(num_nodes));
    pairs.push_back(NodePair{u, v});
  }
  return pairs;
}

struct Fixture {
  Dataset dataset;
  LinMeasure lin;
  WalkIndex index;

  explicit Fixture(Dataset d, int num_walks = 60, int walk_length = 10)
      : dataset(std::move(d)),
        lin(&dataset.context),
        index(WalkIndex::Build(dataset.graph,
                               WalkIndexOptions{num_walks, walk_length, 11,
                                                false})) {}
};

Fixture Figure1Fixture() { return Fixture(Unwrap(MakeFigure1Dataset())); }

Fixture AminerFixture() {
  AminerOptions opt;
  opt.num_authors = 220;
  opt.seed = 3;
  return Fixture(Unwrap(GenerateAminer(opt)));
}

void ExpectBatchDeterministic(const Fixture& f, const SemSimMcOptions& mc) {
  std::vector<NodePair> pairs = MakePairs(f.dataset.graph.num_nodes(), 200);

  // Engine results must be bit-identical for 1, 2, and 8 threads — and
  // identical to the cacheless serial estimator, so neither the pool
  // partitioning nor cross-query cache history may perturb a single ulp.
  SemSimMcEstimator plain(&f.dataset.graph, &f.lin, &f.index);
  std::vector<double> expected;
  for (const NodePair& p : pairs) {
    expected.push_back(plain.Query(p.first, p.second, mc));
  }
  for (int threads : {1, 2, 8}) {
    BatchQueryEngineOptions opt;
    opt.num_threads = threads;
    opt.query.mc = mc;
    BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));
    // Two rounds: the second runs against a warm cross-query cache.
    for (int round = 0; round < 2; ++round) {
      std::vector<double> got = engine.QueryBatch(pairs).values;
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << "threads=" << threads << " round=" << round << " item=" << i;
      }
    }
  }
}

TEST(BatchQuery, BitIdenticalAcrossThreadCountsOnFigure1) {
  ExpectBatchDeterministic(Figure1Fixture(), SemSimMcOptions{0.6, 0.0});
}

TEST(BatchQuery, BitIdenticalAcrossThreadCountsOnGeneratedAminer) {
  ExpectBatchDeterministic(AminerFixture(), SemSimMcOptions{0.6, 0.05});
}

TEST(BatchQuery, EstimatorQueryBatchMatchesSerialWithoutEngine) {
  Fixture f = AminerFixture();
  SemSimMcOptions mc{0.6, 0.05};
  SemSimMcEstimator estimator(&f.dataset.graph, &f.lin, &f.index);
  std::vector<NodePair> pairs = MakePairs(f.dataset.graph.num_nodes(), 150);
  ThreadPool pool(4);
  McQueryStats stats;
  std::vector<double> got = estimator.QueryBatch(pairs, mc, pool, &stats);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(got[i], estimator.Query(pairs[i].first, pairs[i].second, mc));
  }
  EXPECT_GT(stats.met_walks, 0);
}

TEST(BatchQuery, SingleSourceBatchMatchesSerialSweeps) {
  Fixture f = AminerFixture();
  SemSimMcOptions mc{0.6, 0.05};
  BatchQueryEngineOptions opt;
  opt.num_threads = 4;
  opt.query.mc = mc;
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));

  SemSimMcEstimator plain(&f.dataset.graph, &f.lin, &f.index);
  SingleSourceIndex inverted =
      SingleSourceIndex::Build(f.index, f.dataset.graph.num_nodes());

  std::vector<NodeId> sources = {0, 3, 7, 11, 0, 3};
  auto batch = engine.SingleSourceBatch(sources).values;
  ASSERT_EQ(batch.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<double> serial = inverted.SemSimFrom(sources[i], plain, mc);
    ASSERT_EQ(batch[i].size(), serial.size());
    for (size_t v = 0; v < serial.size(); ++v) {
      ASSERT_EQ(batch[i][v], serial[v]) << "source=" << sources[i];
    }
  }
}

TEST(BatchQuery, TopKBatchMatchesSerialTopK) {
  Fixture f = Figure1Fixture();
  SemSimMcOptions mc{0.6, 0.0};
  BatchQueryEngineOptions opt;
  opt.num_threads = 8;
  opt.query.mc = mc;
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));

  SemSimMcEstimator plain(&f.dataset.graph, &f.lin, &f.index);
  SingleSourceIndex inverted =
      SingleSourceIndex::Build(f.index, f.dataset.graph.num_nodes());

  std::vector<NodeId> sources;
  for (NodeId v = 0; v < f.dataset.graph.num_nodes(); ++v) {
    sources.push_back(v);
  }
  auto batch = engine.TopKBatch(sources, 3).values;
  ASSERT_EQ(batch.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<Scored> serial = inverted.TopKFrom(sources[i], 3, plain, mc);
    ASSERT_EQ(batch[i].size(), serial.size());
    for (size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(batch[i][j].node, serial[j].node);
      EXPECT_EQ(batch[i][j].score, serial[j].score);
    }
  }
}

TEST(BatchQuery, SharedCacheHitsAccumulateAcrossRepeatedSingleSource) {
  Fixture f = AminerFixture();
  BatchQueryEngineOptions opt;
  opt.num_threads = 2;
  opt.query.mc = SemSimMcOptions{0.6, 0.05};
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));

  std::vector<NodeId> sources = {1, 2, 5};
  McQueryStats first = engine.SingleSourceBatch(sources).stats;
  // Repeating the same sources must be answered largely from the
  // cross-query normalizer cache: nonzero hits, and strictly fewer d²
  // computations than a cold engine performed.
  McQueryStats second = engine.SingleSourceBatch(sources).stats;
  EXPECT_GT(second.shared_cache_hits, 0);
  EXPECT_LT(second.normalizers_computed, first.normalizers_computed);
  EXPECT_GT(engine.normalizer_cache()->hits(), 0u);
}

TEST(BatchQuery, EngineReportsResolvedThreadCount) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  opt.num_threads = 0;  // auto
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));
  EXPECT_EQ(engine.num_threads(), ThreadPool::ResolveThreadCount(0));
  // Create resolves the count into the engine's own options too.
  EXPECT_EQ(engine.options().num_threads, engine.num_threads());
  opt.num_threads = 3;
  BatchQueryEngine fixed =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));
  EXPECT_EQ(fixed.num_threads(), 3);
}

// Asserts that Create fails with InvalidArgument and that the message
// contains `needle`, so callers get an actionable diagnostic rather
// than a bare error code.
void ExpectCreateRejects(const Hin* graph, const SemanticMeasure* semantic,
                         const WalkIndex* index,
                         const BatchQueryEngineOptions& opt,
                         const std::string& needle) {
  auto r = BatchQueryEngine::Create(graph, semantic, index, opt);
  ASSERT_FALSE(r.ok()) << "expected rejection mentioning '" << needle << "'";
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find(needle), std::string::npos)
      << "status was: " << r.status().ToString();
}

TEST(BatchQuery, CreateRejectsEachNullDependencyIndividually) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  ExpectCreateRejects(nullptr, &f.lin, &f.index, opt, "required");
  ExpectCreateRejects(&f.dataset.graph, nullptr, &f.index, opt, "required");
  ExpectCreateRejects(&f.dataset.graph, &f.lin, nullptr, opt, "required");
}

TEST(BatchQuery, CreateRejectsNegativeNormalizerCacheCapacity) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  opt.normalizer_cache_capacity = -1;
  ExpectCreateRejects(&f.dataset.graph, &f.lin, &f.index, opt,
                      "cache capacities must be >= 0");
}

TEST(BatchQuery, CreateRejectsNegativeSemanticCacheCapacity) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  opt.semantic_cache_capacity = -7;
  ExpectCreateRejects(&f.dataset.graph, &f.lin, &f.index, opt,
                      "cache capacities must be >= 0");
}

TEST(BatchQuery, CreateRejectsEachBadDecayIndividually) {
  Fixture f = Figure1Fixture();
  for (double decay : {0.0, 1.0, 1.2, -0.3}) {
    BatchQueryEngineOptions opt;
    opt.query.mc = SemSimMcOptions{decay, 0.0};
    ExpectCreateRejects(&f.dataset.graph, &f.lin, &f.index, opt,
                        "decay must lie in (0,1)");
  }
}

TEST(BatchQuery, CreateRejectsThetaAboveLemmaBound) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  opt.query.mc = SemSimMcOptions{0.6, 0.5};  // violates θ <= 1-c
  ExpectCreateRejects(&f.dataset.graph, &f.lin, &f.index, opt, "Lemma 4.7");
  // The boundary itself is legal.
  opt.query.mc = SemSimMcOptions{0.6, 0.4};
  EXPECT_TRUE(
      BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt).ok());
}

TEST(BatchQuery, CreateAcceptsValidOptionsAfterAllRejections) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  opt.query.mc = SemSimMcOptions{0.6, 0.05};
  EXPECT_TRUE(
      BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt).ok());
}

TEST(BatchQuery, CreateRejectsNegativeWalkBudget) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  opt.query.mc.walk_budget = -1;
  ExpectCreateRejects(&f.dataset.graph, &f.lin, &f.index, opt,
                      "walk_budget must be >= 0");
}

// A second engine bound over the first engine's snapshot shares every
// artifact and answers bit-identically — the replay path the stress
// harness and the hot-swap tests rely on. (The deprecated McQueryStats*
// out-param shims this test used to cover are gone; BatchResult is the
// only stats surface now.)
TEST(BatchQuery, EngineFromSharedSnapshotIsBitIdentical) {
  Fixture f = AminerFixture();
  BatchQueryEngineOptions opt;
  opt.num_threads = 2;
  opt.query.mc = SemSimMcOptions{0.6, 0.05};
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));
  std::vector<NodePair> pairs = MakePairs(f.dataset.graph.num_nodes(), 80);
  std::vector<NodeId> sources = {0, 3, 7};

  BatchResult<double> q = engine.QueryBatch(pairs);
  BatchResult<std::vector<double>> ss = engine.SingleSourceBatch(sources);
  BatchResult<std::vector<Scored>> tk = engine.TopKBatch(sources, 5);

  EngineSnapshotPtr snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_NE(snapshot->fingerprint(), 0u);
  BatchQueryEngine replica =
      Unwrap(BatchQueryEngine::CreateFromSnapshot(snapshot, /*num_threads=*/1));
  EXPECT_EQ(replica.snapshot()->fingerprint(), snapshot->fingerprint());

  BatchResult<double> q2 = replica.QueryBatch(pairs);
  BatchResult<std::vector<double>> ss2 = replica.SingleSourceBatch(sources);
  BatchResult<std::vector<Scored>> tk2 = replica.TopKBatch(sources, 5);

  EXPECT_EQ(q2.values, q.values);
  EXPECT_EQ(ss2.values, ss.values);
  ASSERT_EQ(tk2.values.size(), tk.values.size());
  for (size_t i = 0; i < tk2.values.size(); ++i) {
    ASSERT_EQ(tk2.values[i].size(), tk.values[i].size());
    for (size_t j = 0; j < tk2.values[i].size(); ++j) {
      EXPECT_EQ(tk2.values[i][j].node, tk.values[i][j].node);
      EXPECT_EQ(tk2.values[i][j].score, tk.values[i][j].score);
    }
  }
  EXPECT_GT(ss2.stats.met_walks, 0);
  EXPECT_EQ(ss2.stats.met_walks, ss.stats.met_walks);
}

// A full (or zero) walk_budget override and an unfired cancel token are
// both bit-exact no-ops relative to the engine's own options.
TEST(BatchQuery, FullWalkBudgetAndUnfiredTokenAreBitExactNoOps) {
  Fixture f = AminerFixture();
  BatchQueryEngineOptions opt;
  opt.num_threads = 2;
  opt.query.mc = SemSimMcOptions{0.6, 0.05};
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));
  std::vector<NodePair> pairs = MakePairs(f.dataset.graph.num_nodes(), 120);
  std::vector<double> want = engine.QueryBatch(pairs).values;

  CancelToken token;  // never fired
  SemSimMcOptions mc = opt.query.mc;
  mc.walk_budget = f.index.num_walks();
  mc.cancel = &token;
  EXPECT_EQ(engine.QueryBatch(pairs, mc).values, want);
  EXPECT_GT(token.polls(), 0u);
  EXPECT_FALSE(token.observed());

  mc.walk_budget = 0;  // 0 = the full index
  EXPECT_EQ(engine.QueryBatch(pairs, mc).values, want);
}

// A reduced walk budget means the same thing on every query path: the
// pair estimator, the single-source sweep, and top-k all restrict to the
// first n_b walks and average over n_b. Pair vs sweep agree up to the
// documented summation-order band; top-k is exactly the budgeted rows.
TEST(BatchQuery, WalkBudgetConsistentAcrossPairSweepAndTopK) {
  Fixture f = AminerFixture();
  BatchQueryEngineOptions opt;
  opt.num_threads = 2;
  opt.query.mc = SemSimMcOptions{0.6, 0.05};
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));
  SemSimMcOptions budgeted = opt.query.mc;
  budgeted.walk_budget = 10;

  std::vector<NodeId> sources = {0, 5, 9};
  auto rows = engine.SingleSourceBatch(sources, budgeted).values;
  ASSERT_EQ(rows.size(), sources.size());
  size_t n = f.dataset.graph.num_nodes();
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<NodePair> pairs;
    for (NodeId v = 0; v < n; ++v) pairs.push_back({sources[i], v});
    std::vector<double> got = engine.QueryBatch(pairs, budgeted).values;
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_NEAR(rows[i][v], got[v], 1e-10)
          << "source=" << sources[i] << " v=" << v;
    }
  }
  // Top-k over the budgeted sweep is the top-k of the budgeted rows.
  auto topk = engine.TopKBatch(sources, 4, budgeted).values;
  for (size_t i = 0; i < sources.size(); ++i) {
    for (const Scored& s : topk[i]) {
      EXPECT_EQ(s.score, rows[i][s.node]);
    }
  }
}

TEST(BatchQuery, WalkBudgetErrorBandWidensAsBudgetShrinks) {
  size_t n = 1000;
  double full_band = WalkBudgetErrorBand(150, 0.05, n);
  double degraded_band = WalkBudgetErrorBand(10, 0.05, n);
  EXPECT_GT(degraded_band, full_band);
  // Round trip with Prop. 4.2: the budget RequiredWalkParameters picks
  // for a target eps guarantees a band no wider than eps.
  WalkAccuracy acc = RequiredWalkParameters(0.3, 0.05, n, 0.6);
  EXPECT_LE(WalkBudgetErrorBand(acc.num_walks, 0.05, n), 0.3 + 1e-12);
}

TEST(BatchQuery, NullStatsCallSitesStillPublishToRegistry) {
  Fixture f = Figure1Fixture();
  BatchQueryEngineOptions opt;
  opt.num_threads = 2;
  BatchQueryEngine engine =
      Unwrap(BatchQueryEngine::Create(&f.dataset.graph, &f.lin, &f.index, opt));
  std::vector<NodePair> pairs = MakePairs(f.dataset.graph.num_nodes(), 50);

  Counter* met = MetricsRegistry::Global().GetCounter(
      "semsim_query_met_walks_total");
  Counter* published = MetricsRegistry::Global().GetCounter(
      "semsim_query_published_total");
  uint64_t met_before = met->Value();
  uint64_t published_before = published->Value();
  engine.QueryBatch(pairs);  // result (and its stats) dropped on the floor
  EXPECT_GT(met->Value(), met_before);
  EXPECT_GT(published->Value(), published_before);
}

}  // namespace
}  // namespace semsim

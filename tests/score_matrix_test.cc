#include "core/score_matrix.h"

#include <gtest/gtest.h>

namespace semsim {
namespace {

TEST(ScoreMatrix, SetIsSymmetric) {
  ScoreMatrix m(3);
  m.set(0, 2, 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(ScoreMatrix, InitValueFillsEverything) {
  ScoreMatrix m(2, 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.25);
}

TEST(ScoreMatrix, SetLowerThenSymmetrize) {
  ScoreMatrix m(3);
  m.set_lower(1, 0, 0.3);
  m.set_lower(2, 0, 0.6);
  m.set_lower(2, 1, 0.9);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);  // mirror not yet written
  m.SymmetrizeFromLower();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.3);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.6);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.9);
}

TEST(ScoreMatrix, RowAccess) {
  ScoreMatrix m(3);
  m.set(1, 0, 0.4);
  m.set(1, 2, 0.7);
  const double* row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 0.4);
  EXPECT_DOUBLE_EQ(row[2], 0.7);
}

TEST(ScoreMatrix, Differences) {
  ScoreMatrix a(2), b(2);
  a.set(0, 1, 0.5);
  b.set(0, 1, 0.75);
  b.set(0, 0, 1.0);
  a.set(0, 0, 1.0);
  // Abs diff over 4 ordered entries: (0, .25, .25, 0)/4.
  EXPECT_DOUBLE_EQ(a.MeanAbsDifference(b), 0.125);
  EXPECT_DOUBLE_EQ(a.MaxAbsDifference(b), 0.25);
  // Rel diff counts entries with positive max: (1,1) is 0/… skipped?
  // entries: (0,0): |1-1|/1=0; (0,1)&(1,0): .25/.75; (1,1): max 0 skipped.
  EXPECT_NEAR(a.MeanRelDifference(b), (0.0 + 2 * (0.25 / 0.75)) / 3, 1e-12);
}

TEST(ScoreMatrix, EmptyMatrix) {
  ScoreMatrix m;
  EXPECT_EQ(m.size(), 0u);
  ScoreMatrix other;
  EXPECT_DOUBLE_EQ(m.MeanAbsDifference(other), 0.0);
}

}  // namespace
}  // namespace semsim

#include "common/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

namespace semsim {
namespace {

using Clock = CancelToken::Clock;

TEST(CancelToken, FreshTokenNeverStops) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.observed());
  EXPECT_EQ(token.remaining(), Clock::duration::max());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancelToken, ExplicitCancelIsStickyAndIdempotent) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.observed());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelToken, DeadlineExpiryFires) {
  CancelToken token;
  token.SetTimeout(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_GT(token.remaining(), Clock::duration::zero());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.remaining(), Clock::duration::zero());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, AlreadyExpiredDeadlineStopsImmediately) {
  CancelToken token;
  token.SetDeadline(Clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelToken, SecondDeadlineOverwritesTheFirst) {
  CancelToken token;
  token.SetDeadline(Clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(token.deadline_exceeded());
  token.SetDeadline(Clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_GT(token.remaining(), std::chrono::minutes(59));
}

TEST(CancelToken, CancelWinsOverDeadlineInToStatus) {
  CancelToken token;
  token.SetDeadline(Clock::now() - std::chrono::seconds(1));
  token.Cancel();
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelToken, SharedTokenObservedAcrossThreads) {
  // The serving pattern: the caller holds one end of a shared token,
  // worker loops poll the other. A cancel from the caller thread must be
  // observed by a polling worker, and the observation must flow back.
  auto token = std::make_shared<CancelToken>();
  std::thread worker([token] {
    while (!token->ShouldStop()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  token->Cancel();
  worker.join();
  EXPECT_TRUE(token->observed());
  EXPECT_GT(token->polls(), 0u);
}

TEST(CancelToken, PollsAreCounted) {
  CancelToken token;
  uint64_t before = token.polls();
  token.ShouldStop();
  token.ShouldStop();
  EXPECT_EQ(token.polls(), before + 2);
}

TEST(CancelToken, UnfiredDeadlineDoesNotStop) {
  CancelToken token;
  token.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.observed());
  EXPECT_TRUE(token.ToStatus().ok());
}

}  // namespace
}  // namespace semsim

#include "core/mc_semsim.h"

#include <gtest/gtest.h>

#include "core/iterative.h"
#include "core/mc_simrank.h"
#include "core/walk_index.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeJehWidomWorld;
using testutil::MakeSmallWorld;
using testutil::Unwrap;

WalkIndexOptions BigIndex(uint64_t seed) {
  WalkIndexOptions opt;
  opt.num_walks = 3000;  // large n_w so MC error is small in tests
  opt.walk_length = 15;
  opt.seed = seed;
  return opt;
}

TEST(McSimRank, ApproximatesIterativeScores) {
  auto w = MakeJehWidomWorld();
  WalkIndex index = WalkIndex::Build(w.graph, BigIndex(11));
  ScoreMatrix exact = Unwrap(ComputeSimRank(w.graph, 0.8, 40, nullptr));
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      EXPECT_NEAR(McSimRankQuery(index, u, v, 0.8), exact.at(u, v), 0.03)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(McSimRank, SelfPairIsOne) {
  auto w = MakeJehWidomWorld();
  WalkIndexOptions opt;
  opt.num_walks = 10;
  opt.walk_length = 5;
  WalkIndex index = WalkIndex::Build(w.graph, opt);
  EXPECT_DOUBLE_EQ(McSimRankQuery(index, w.univ, w.univ, 0.8), 1.0);
}

TEST(FirstMeetingStep, HandlesDeadWalks) {
  // x has no in-neighbors, so every walk from it dies immediately and the
  // coupled walks never meet.
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  WalkIndexOptions opt;
  opt.num_walks = 4;
  opt.walk_length = 6;
  WalkIndex index = WalkIndex::Build(g, opt);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(FirstMeetingStep(index, x, y, w), -1);
  }
}

TEST(SemSimMcIs, UnbiasedAgainstIterativeGroundTruth) {
  // The IS estimator with θ=0 approximates the exact SemSim fixed point
  // (Prop. 4.4 + Prop. 4.2).
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndex index = WalkIndex::Build(w.graph, BigIndex(13));
  SemSimMcEstimator estimator(&w.graph, &lin, &index);
  ScoreMatrix exact = Unwrap(ComputeSemSim(w.graph, lin, 0.6, 40, nullptr));
  SemSimMcOptions opt;
  opt.decay = 0.6;
  opt.theta = 0.0;
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      EXPECT_NEAR(estimator.Query(u, v, opt), exact.at(u, v), 0.05)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(SemSimMcIs, WeightedProposalAlsoUnbiased) {
  // Eq. 4 holds for any proposal Q; the ablation swaps uniform for
  // weight-proportional sampling.
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndexOptions wopt = BigIndex(17);
  wopt.weighted = true;
  WalkIndex index = WalkIndex::Build(w.graph, wopt);
  SemSimMcEstimator estimator(&w.graph, &lin, &index);
  ScoreMatrix exact = Unwrap(ComputeSemSim(w.graph, lin, 0.6, 40, nullptr));
  SemSimMcOptions opt;
  opt.decay = 0.6;
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      EXPECT_NEAR(estimator.Query(u, v, opt), exact.at(u, v), 0.05);
    }
  }
}

TEST(SemSimMcIs, PruningAddsBoundedOneSidedError) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndex index = WalkIndex::Build(w.graph, BigIndex(19));
  SemSimMcEstimator estimator(&w.graph, &lin, &index);
  SemSimMcOptions unpruned{0.6, 0.0};
  SemSimMcOptions pruned{0.6, 0.05};
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      double full = estimator.Query(u, v, unpruned);
      double cut = estimator.Query(u, v, pruned);
      // Prop. 4.6: the pruning error is bounded by θ. Pruned walk scores
      // are *kept at their bound*, so the estimate may move either way,
      // but never by more than θ per Prop. 4.6.
      EXPECT_NEAR(cut, full, 0.05 + 1e-9) << "(" << u << "," << v << ")";
    }
  }
}

TEST(SemSimMcIs, SemanticPruningShortCircuits) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndexOptions wopt;
  wopt.num_walks = 50;
  wopt.walk_length = 10;
  WalkIndex index = WalkIndex::Build(w.graph, wopt);
  SemSimMcEstimator estimator(&w.graph, &lin, &index);
  // a0 and b0 live under different categories: sem is small.
  double sem = lin.Sim(w.a0, w.b0);
  SemSimMcOptions opt;
  opt.decay = 0.6;
  opt.theta = sem + 0.01;  // force the sem-prune branch
  McQueryStats stats;
  EXPECT_DOUBLE_EQ(estimator.Query(w.a0, w.b0, opt, &stats), 0.0);
  EXPECT_TRUE(stats.sem_pruned);
  EXPECT_EQ(stats.normalizers_computed, 0);
}

TEST(SemSimMcIs, CacheGivesIdenticalScores) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndex index = WalkIndex::Build(w.graph, BigIndex(23));
  PairGraph pg(&w.graph, &lin);
  PairNormalizerCache cache = PairNormalizerCache::Build(pg, /*min_sem=*/0.0);
  SemSimMcEstimator plain(&w.graph, &lin, &index);
  SemSimMcEstimator cached(&w.graph, &lin, &index, &cache);
  SemSimMcOptions opt;
  opt.decay = 0.6;
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      McQueryStats stats;
      double a = plain.Query(u, v, opt);
      double b = cached.Query(u, v, opt, &stats);
      // The cache stores normalizers summed in canonical (min,max) pair
      // order, so results may differ in the last ulps.
      EXPECT_NEAR(a, b, 1e-12 + 1e-9 * std::abs(a));
    }
  }
}

TEST(NaiveSemSimMc, MatchesIterativeGroundTruth) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  ScoreMatrix exact = Unwrap(ComputeSemSim(w.graph, lin, 0.6, 40, nullptr));
  Rng rng(31);
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      double est = NaiveSemSimMcQuery(w.graph, lin, u, v, /*num_walks=*/3000,
                                      /*walk_length=*/15, 0.6, rng);
      EXPECT_NEAR(est, exact.at(u, v), 0.05) << "(" << u << "," << v << ")";
    }
  }
}

TEST(SemSimMcIs, AgreesWithNaiveSampler) {
  // The two estimators target the same quantity from different samplers.
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndex index = WalkIndex::Build(w.graph, BigIndex(37));
  SemSimMcEstimator is_estimator(&w.graph, &lin, &index);
  SemSimMcOptions opt;
  opt.decay = 0.6;
  Rng rng(41);
  double is_score = is_estimator.Query(w.a0, w.a1, opt);
  double naive = NaiveSemSimMcQuery(w.graph, lin, w.a0, w.a1, 3000, 15, 0.6,
                                    rng);
  EXPECT_NEAR(is_score, naive, 0.06);
}

}  // namespace
}  // namespace semsim

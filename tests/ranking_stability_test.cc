// Statistical validation of Prop. 4.3: the probability that the MC
// estimator interchanges two nodes in u's similarity ranking decays
// exponentially in n_w. We measure interchange frequencies over repeated
// index builds and check they shrink with n_w and stay under the bound.
#include <gtest/gtest.h>

#include <cmath>

#include "core/iterative.h"
#include "core/mc_semsim.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

// Fraction of runs in which sim(u,v) > sim(u,v') ground-truth order is
// inverted by the estimates.
double InterchangeRate(const Hin& graph, const LinMeasure& lin, NodeId u,
                       NodeId v, NodeId v_prime, int num_walks, int runs) {
  int inverted = 0;
  for (int r = 0; r < runs; ++r) {
    WalkIndexOptions opt;
    opt.num_walks = num_walks;
    opt.walk_length = 12;
    opt.seed = 9000 + static_cast<uint64_t>(r);
    WalkIndex index = WalkIndex::Build(graph, opt);
    SemSimMcEstimator est(&graph, &lin, &index);
    SemSimMcOptions mc{0.6, 0.0};
    if (est.Query(u, v, mc) < est.Query(u, v_prime, mc)) ++inverted;
  }
  return static_cast<double>(inverted) / static_cast<double>(runs);
}

TEST(RankingStability, InterchangeProbabilityShrinksWithWalks) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  ScoreMatrix exact = Unwrap(ComputeSemSim(w.graph, lin, 0.6, 20, nullptr));

  // Pick a pair of candidates with a clear ground-truth gap from a0.
  NodeId v = w.a1, v_prime = w.b0;
  double delta = exact.at(w.a0, v) - exact.at(w.a0, v_prime);
  ASSERT_GT(delta, 0.01) << "fixture must provide a separated pair";

  constexpr int kRuns = 40;
  double rate_small =
      InterchangeRate(w.graph, lin, w.a0, v, v_prime, 20, kRuns);
  double rate_large =
      InterchangeRate(w.graph, lin, w.a0, v, v_prime, 400, kRuns);
  // More walks → no more interchanges than with few walks (allow one run
  // of slack for MC noise), and large-n_w rate must satisfy the
  // Prop. 4.3 bound 2·exp(-n_w δ²/(2+2δ/3)).
  EXPECT_LE(rate_large, rate_small + 1.0 / kRuns);
  double bound =
      2.0 * std::exp(-400.0 * delta * delta / (2.0 + 2.0 * delta / 3.0));
  EXPECT_LE(rate_large, std::max(bound, 1.0 / kRuns) + 1.0 / kRuns);
}

TEST(RankingStability, WellSeparatedPairsNeverInterchangeAtPaperSettings) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  // a0 vs (a1, b1): same-category direct neighbor against cross-category
  // distant node — a large gap. At the paper's n_w=150 the ranking must
  // be stable across rebuilds.
  double rate = InterchangeRate(w.graph, lin, w.a0, w.a1, w.b1, 150, 30);
  EXPECT_DOUBLE_EQ(rate, 0.0);
}

}  // namespace
}  // namespace semsim

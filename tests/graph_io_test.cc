#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

class GraphIoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "semsim_io_" + name;
  }
};

TEST_F(GraphIoTest, RoundTripPreservesEverything) {
  auto w = testutil::MakeSmallWorld();
  std::string path = Path("roundtrip.hin");
  ASSERT_TRUE(SaveHin(w.graph, path).ok());
  Hin loaded = Unwrap(LoadHin(path));

  ASSERT_EQ(loaded.num_nodes(), w.graph.num_nodes());
  ASSERT_EQ(loaded.num_edges(), w.graph.num_edges());
  for (NodeId v = 0; v < loaded.num_nodes(); ++v) {
    EXPECT_EQ(loaded.node_name(v), w.graph.node_name(v));
    EXPECT_EQ(loaded.label_name(loaded.node_label(v)),
              w.graph.label_name(w.graph.node_label(v)));
    auto a = loaded.InNeighbors(v);
    auto b = w.graph.InNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
      EXPECT_EQ(loaded.label_name(a[i].edge_label),
                w.graph.label_name(b[i].edge_label));
    }
  }
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadHin("/nonexistent/nowhere.hin").ok());
}

TEST_F(GraphIoTest, LoadRejectsMalformedEdge) {
  std::string path = Path("badedge.hin");
  {
    std::ofstream out(path);
    out << "n a t\nn b t\ne 0 oops\n";
  }
  Result<Hin> r = LoadHin(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, LoadRejectsUnknownDirective) {
  std::string path = Path("baddir.hin");
  {
    std::ofstream out(path);
    out << "n a t\nq what\n";
  }
  EXPECT_FALSE(LoadHin(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, LoadRejectsEdgeToMissingNode) {
  std::string path = Path("badref.hin");
  {
    std::ofstream out(path);
    out << "n a t\ne 0 7 e 1.0\n";
  }
  EXPECT_FALSE(LoadHin(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, SaveRejectsWhitespaceNames) {
  HinBuilder b;
  b.AddNode("has space", "t");
  Hin g = Unwrap(std::move(b).Build());
  std::string path = Path("ws.hin");
  EXPECT_FALSE(SaveHin(g, path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, DuplicateEdgeLinesBecomeParallelEdgesByDefault) {
  // The default policy keeps repeated (src, dst, label) lines as parallel
  // edges of the paper's weighted multigraph: multiplicity accumulates
  // and the weights sum. This is the documented contract in graph_io.h —
  // if it changes, SaveHin round-trips of multigraphs break.
  std::string path = Path("dupe.hin");
  {
    std::ofstream out(path);
    out << "n a t\nn b t\ne 0 1 rel 2.0\ne 0 1 rel 3.0\n";
  }
  Hin g = Unwrap(LoadHin(path));
  EXPECT_EQ(g.num_edges(), 2u);
  Hin::EdgeInfo info = g.InEdgeInfo(1, 0);
  EXPECT_EQ(info.multiplicity, 2u);
  EXPECT_DOUBLE_EQ(info.total_weight, 5.0);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, StrictModeRejectsDuplicateEdgeLines) {
  std::string path = Path("dupe_strict.hin");
  {
    std::ofstream out(path);
    out << "n a t\nn b t\ne 0 1 rel 2.0\ne 0 1 rel 3.0\n";
  }
  LoadHinOptions opt;
  opt.duplicate_edges = DuplicateEdgePolicy::kReject;
  Result<Hin> r = LoadHin(path, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The message names the offending line so the file can be fixed.
  EXPECT_NE(r.status().ToString().find("line 4"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, StrictModeStillAcceptsDistinctLabelParallels) {
  // Parallel edges whose labels differ are distinct relations, never
  // duplicates — strict mode must not reject them.
  std::string path = Path("dupe_labels.hin");
  {
    std::ofstream out(path);
    out << "n a t\nn b t\ne 0 1 writes 1.0\ne 0 1 cites 1.0\n";
  }
  LoadHinOptions opt;
  opt.duplicate_edges = DuplicateEdgePolicy::kReject;
  Hin g = Unwrap(LoadHin(path, opt));
  EXPECT_EQ(g.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, ParallelEdgesSurviveSaveLoadRoundTrip) {
  HinBuilder b;
  b.AddNode("a", "t");
  b.AddNode("b", "t");
  ASSERT_TRUE(b.AddEdge(0, 1, "rel", 2.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, "rel", 3.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  std::string path = Path("dupe_roundtrip.hin");
  ASSERT_TRUE(SaveHin(g, path).ok());
  Hin loaded = Unwrap(LoadHin(path));
  EXPECT_EQ(loaded.num_edges(), 2u);
  Hin::EdgeInfo info = loaded.InEdgeInfo(1, 0);
  EXPECT_EQ(info.multiplicity, 2u);
  EXPECT_DOUBLE_EQ(info.total_weight, 5.0);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, CommentsAreSkipped) {
  std::string path = Path("comments.hin");
  {
    std::ofstream out(path);
    out << "# header\nn a t\n# middle\nn b t\ne 0 1 e 2.5\n";
  }
  Hin g = Unwrap(LoadHin(path));
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semsim

#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

class GraphIoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "semsim_io_" + name;
  }
};

TEST_F(GraphIoTest, RoundTripPreservesEverything) {
  auto w = testutil::MakeSmallWorld();
  std::string path = Path("roundtrip.hin");
  ASSERT_TRUE(SaveHin(w.graph, path).ok());
  Hin loaded = Unwrap(LoadHin(path));

  ASSERT_EQ(loaded.num_nodes(), w.graph.num_nodes());
  ASSERT_EQ(loaded.num_edges(), w.graph.num_edges());
  for (NodeId v = 0; v < loaded.num_nodes(); ++v) {
    EXPECT_EQ(loaded.node_name(v), w.graph.node_name(v));
    EXPECT_EQ(loaded.label_name(loaded.node_label(v)),
              w.graph.label_name(w.graph.node_label(v)));
    auto a = loaded.InNeighbors(v);
    auto b = w.graph.InNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
      EXPECT_EQ(loaded.label_name(a[i].edge_label),
                w.graph.label_name(b[i].edge_label));
    }
  }
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadHin("/nonexistent/nowhere.hin").ok());
}

TEST_F(GraphIoTest, LoadRejectsMalformedEdge) {
  std::string path = Path("badedge.hin");
  {
    std::ofstream out(path);
    out << "n a t\nn b t\ne 0 oops\n";
  }
  Result<Hin> r = LoadHin(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, LoadRejectsUnknownDirective) {
  std::string path = Path("baddir.hin");
  {
    std::ofstream out(path);
    out << "n a t\nq what\n";
  }
  EXPECT_FALSE(LoadHin(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, LoadRejectsEdgeToMissingNode) {
  std::string path = Path("badref.hin");
  {
    std::ofstream out(path);
    out << "n a t\ne 0 7 e 1.0\n";
  }
  EXPECT_FALSE(LoadHin(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, SaveRejectsWhitespaceNames) {
  HinBuilder b;
  b.AddNode("has space", "t");
  Hin g = Unwrap(std::move(b).Build());
  std::string path = Path("ws.hin");
  EXPECT_FALSE(SaveHin(g, path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, CommentsAreSkipped) {
  std::string path = Path("comments.hin");
  {
    std::ofstream out(path);
    out << "# header\nn a t\n# middle\nn b t\ne 0 1 e 2.5\n";
  }
  Hin g = Unwrap(LoadHin(path));
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semsim

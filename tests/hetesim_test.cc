#include "baselines/hetesim.h"

#include <gtest/gtest.h>

#include "core/mc_semsim.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(HeteSim, MidpointDistributionsOnKnownGraph) {
  // Two authors writing the same single paper have identical midpoint
  // distributions: HeteSim = 1. Authors with disjoint papers score 0.
  HinBuilder b;
  NodeId a1 = b.AddNode("a1", "author");
  NodeId a2 = b.AddNode("a2", "author");
  NodeId a3 = b.AddNode("a3", "author");
  NodeId p1 = b.AddNode("p1", "paper");
  NodeId p2 = b.AddNode("p2", "paper");
  ASSERT_TRUE(b.AddUndirectedEdge(a1, p1, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a2, p1, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a3, p2, "w", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  HeteSim hs = Unwrap(HeteSim::Build(g, {"w", "w"}));
  EXPECT_DOUBLE_EQ(hs.Score(a1, a2), 1.0);
  EXPECT_DOUBLE_EQ(hs.Score(a1, a3), 0.0);
  EXPECT_DOUBLE_EQ(hs.Score(a1, a1), 1.0);
}

TEST(HeteSim, PartialOverlapScoresBetweenZeroAndOne) {
  HinBuilder b;
  NodeId a1 = b.AddNode("a1", "author");
  NodeId a2 = b.AddNode("a2", "author");
  NodeId p1 = b.AddNode("p1", "paper");
  NodeId p2 = b.AddNode("p2", "paper");
  NodeId p3 = b.AddNode("p3", "paper");
  ASSERT_TRUE(b.AddUndirectedEdge(a1, p1, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a1, p2, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a2, p2, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a2, p3, "w", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  HeteSim hs = Unwrap(HeteSim::Build(g, {"w", "w"}));
  double s = hs.Score(a1, a2);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
  // Each distribution is (1/2, 1/2) over two papers with one common:
  // cosine = 0.25 / (sqrt(0.5)·sqrt(0.5)) = 0.5.
  EXPECT_NEAR(s, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(hs.Score(a1, a2), hs.Score(a2, a1));
}

TEST(HeteSim, WeightsShapeTheDistributions) {
  HinBuilder b;
  NodeId a1 = b.AddNode("a1", "author");
  NodeId a2 = b.AddNode("a2", "author");
  NodeId p1 = b.AddNode("p1", "paper");
  NodeId p2 = b.AddNode("p2", "paper");
  // a1 mostly on p1; a2 mostly on p2; both touch both.
  ASSERT_TRUE(b.AddUndirectedEdge(a1, p1, "w", 9).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a1, p2, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a2, p1, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a2, p2, "w", 9).ok());
  Hin g = Unwrap(std::move(b).Build());
  HeteSim hs = Unwrap(HeteSim::Build(g, {"w", "w"}));
  double s = hs.Score(a1, a2);
  // (0.9,0.1)·(0.1,0.9) / (norm²) = 0.18/0.82.
  EXPECT_NEAR(s, 0.18 / 0.82, 1e-12);
}

TEST(HeteSim, ValidatesMetaPath) {
  auto w = MakeSmallWorld();
  EXPECT_FALSE(HeteSim::Build(w.graph, {}).ok());
  EXPECT_FALSE(HeteSim::Build(w.graph, {"rel"}).ok());  // odd length
  EXPECT_FALSE(HeteSim::Build(w.graph, {"rel", "nope"}).ok());
  EXPECT_TRUE(HeteSim::Build(w.graph, {"rel", "rel"}).ok());
}

TEST(RequiredWalkParameters, MatchesProposition42) {
  WalkAccuracy acc = RequiredWalkParameters(0.1, 0.05, 1000, 0.6);
  // t > log_0.6(0.05) = ln(0.05)/ln(0.6) ≈ 5.86 → at least 7 with margin.
  EXPECT_GE(acc.walk_length, 6);
  // n_w >= 14/(3·0.01)·(ln 40 + 2 ln 1000) ≈ 466.7·(3.69 + 13.8) ≈ 8170.
  EXPECT_GE(acc.num_walks, 8000);
  EXPECT_LE(acc.num_walks, 9000);
  // Tighter epsilon needs quadratically more walks and longer walks.
  WalkAccuracy tight = RequiredWalkParameters(0.05, 0.05, 1000, 0.6);
  EXPECT_GT(tight.num_walks, 3 * acc.num_walks);
  EXPECT_GT(tight.walk_length, acc.walk_length);
}

}  // namespace
}  // namespace semsim

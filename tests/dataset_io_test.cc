#include "datasets/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datasets/amazon_gen.h"
#include "datasets/figure1.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "semsim_dataset_io";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  AmazonOptions gen;
  gen.num_items = 80;
  gen.heldout_fraction = 0.1;
  gen.seed = 5;
  Dataset original = Unwrap(GenerateAmazon(gen));
  // Give it every kind of ground truth.
  original.duplicate_pairs.emplace_back(0, 1);
  original.relatedness.push_back(RelatednessPair{2, 3, 0.42});

  ASSERT_TRUE(SaveDataset(original, dir_).ok());
  Dataset loaded = Unwrap(LoadDataset(dir_));

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.graph.num_nodes(), original.graph.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), original.graph.num_edges());
  EXPECT_EQ(loaded.heldout_edges, original.heldout_edges);
  EXPECT_EQ(loaded.duplicate_pairs, original.duplicate_pairs);
  ASSERT_EQ(loaded.relatedness.size(), original.relatedness.size());
  for (size_t i = 0; i < loaded.relatedness.size(); ++i) {
    EXPECT_EQ(loaded.relatedness[i].a, original.relatedness[i].a);
    EXPECT_EQ(loaded.relatedness[i].b, original.relatedness[i].b);
    EXPECT_NEAR(loaded.relatedness[i].human_score,
                original.relatedness[i].human_score, 1e-9);
  }
  // Semantic binding identical: same concepts, IC and Lin scores.
  ASSERT_EQ(loaded.context.taxonomy().num_concepts(),
            original.context.taxonomy().num_concepts());
  LinMeasure lin_a(&original.context), lin_b(&loaded.context);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(loaded.graph.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.NextIndex(loaded.graph.num_nodes()));
    ASSERT_NEAR(lin_a.Sim(u, v), lin_b.Sim(u, v), 1e-9);
  }
}

TEST_F(DatasetIoTest, Figure1RoundTripKeepsTheExampleWorking) {
  Dataset original = Unwrap(MakeFigure1Dataset());
  ASSERT_TRUE(SaveDataset(original, dir_).ok());
  Dataset loaded = Unwrap(LoadDataset(dir_));
  LinMeasure lin(&loaded.context);
  NodeId bo = Unwrap(loaded.graph.FindNode("Bo"));
  NodeId aditi = Unwrap(loaded.graph.FindNode("Aditi"));
  EXPECT_NEAR(lin.Sim(bo, aditi), 0.01, 1e-9);  // Table 1 IC survived
}

TEST_F(DatasetIoTest, LoadRejectsMissingDirectory) {
  EXPECT_FALSE(LoadDataset("/nonexistent/bundle").ok());
}

TEST_F(DatasetIoTest, LoadRejectsCorruptSemantics) {
  Dataset original = Unwrap(MakeFigure1Dataset());
  ASSERT_TRUE(SaveDataset(original, dir_).ok());
  {
    std::ofstream out(dir_ + "/semantics.txt", std::ios::app);
    out << "q garbage\n";
  }
  EXPECT_FALSE(LoadDataset(dir_).ok());
}

TEST_F(DatasetIoTest, LoadRejectsOutOfRangeTaskNodes) {
  Dataset original = Unwrap(MakeFigure1Dataset());
  ASSERT_TRUE(SaveDataset(original, dir_).ok());
  {
    std::ofstream out(dir_ + "/tasks.txt", std::ios::app);
    out << "h 0 99999\n";
  }
  EXPECT_FALSE(LoadDataset(dir_).ok());
}

}  // namespace
}  // namespace semsim

#include <gtest/gtest.h>

#include "baselines/line.h"
#include "baselines/panther.h"
#include "baselines/pathsim.h"
#include "baselines/relatedness.h"
#include "baselines/similarity_fn.h"
#include "baselines/simrankpp.h"
#include "core/iterative.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(SimRankPP, EvidenceCountsCommonInNeighbors) {
  auto w = MakeSmallWorld();
  // a0 and a1 share in-neighbors {CatA, a2} (via rel+is_a edges) plus each
  // other... count exactly:
  size_t common = 0;
  for (const Neighbor& x : w.graph.InNeighbors(w.a0)) {
    for (const Neighbor& y : w.graph.InNeighbors(w.a1)) {
      if (x.node == y.node) {
        ++common;
        break;
      }
    }
  }
  double expected = 1.0 - std::pow(2.0, -static_cast<double>(common));
  EXPECT_DOUBLE_EQ(SimRankPPEvidence(w.graph, w.a0, w.a1), expected);
}

TEST(SimRankPP, NoCommonNeighborsGivesZeroEvidence) {
  HinBuilder b;
  NodeId s1 = b.AddNode("s1", "t");
  NodeId s2 = b.AddNode("s2", "t");
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(s1, x, "e", 1).ok());
  ASSERT_TRUE(b.AddEdge(s2, y, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  EXPECT_DOUBLE_EQ(SimRankPPEvidence(g, x, y), 0.0);
  ScoreMatrix s = Unwrap(ComputeSimRankPP(g, 0.6, 5));
  EXPECT_DOUBLE_EQ(s.at(x, y), 0.0);
}

TEST(SimRankPP, ScoresAreEvidenceTimesWeightedSimRank) {
  auto w = MakeSmallWorld();
  ScoreMatrix spp = Unwrap(ComputeSimRankPP(w.graph, 0.6, 6));
  IterativeOptions opt;
  opt.decay = 0.6;
  opt.max_iterations = 6;
  opt.use_weights = true;
  ScoreMatrix weighted = Unwrap(ComputeIterativeScores(w.graph, opt));
  EXPECT_NEAR(spp.at(w.a0, w.a1),
              SimRankPPEvidence(w.graph, w.a0, w.a1) * weighted.at(w.a0, w.a1),
              1e-12);
  EXPECT_DOUBLE_EQ(spp.at(w.a0, w.a0), 1.0);
}

TEST(Panther, CooccurrenceScores) {
  auto w = MakeSmallWorld();
  PantherOptions opt;
  opt.num_paths = 5000;
  opt.path_length = 4;
  Panther panther = Panther::Build(w.graph, opt);
  EXPECT_DOUBLE_EQ(panther.Score(w.a0, w.a0), 1.0);
  // Directly connected, heavily weighted pairs co-occur often.
  double close = panther.Score(w.a0, w.a1);
  double far = panther.Score(w.a0, w.b1);
  EXPECT_GT(close, 0.0);
  EXPECT_GT(close, far);
  // Symmetric by construction.
  EXPECT_DOUBLE_EQ(panther.Score(w.a0, w.a1), panther.Score(w.a1, w.a0));
  EXPECT_GT(panther.num_cooccurring_pairs(), 0u);
}

TEST(PathSim, CountsWeightedMetaPaths) {
  // author -writes-> paper <-writes- author: classic APA meta-path,
  // modeled here as two hops over "w" edges.
  HinBuilder b;
  NodeId a1 = b.AddNode("a1", "author");
  NodeId a2 = b.AddNode("a2", "author");
  NodeId p1 = b.AddNode("p1", "paper");
  NodeId p2 = b.AddNode("p2", "paper");
  ASSERT_TRUE(b.AddUndirectedEdge(a1, p1, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a2, p1, "w", 1).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(a2, p2, "w", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  PathSim ps = Unwrap(PathSim::Build(g, {"w", "w"}));
  // Path counts: a1⇝a1 via p1 = 1; a2⇝a2 via p1,p2 = 2; a1⇝a2 via p1 = 1.
  EXPECT_DOUBLE_EQ(ps.PathCount(a1, a1), 1.0);
  EXPECT_DOUBLE_EQ(ps.PathCount(a2, a2), 2.0);
  EXPECT_DOUBLE_EQ(ps.PathCount(a1, a2), 1.0);
  EXPECT_DOUBLE_EQ(ps.Score(a1, a2), 2.0 * 1.0 / (1.0 + 2.0));
  EXPECT_DOUBLE_EQ(ps.Score(a1, a1), 1.0);
}

TEST(PathSim, RejectsUnknownLabelAndEmptyPath) {
  auto w = MakeSmallWorld();
  EXPECT_FALSE(PathSim::Build(w.graph, {"nope"}).ok());
  EXPECT_FALSE(PathSim::Build(w.graph, {}).ok());
}

TEST(PathSim, WeightsMultiplyAlongPath) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId m = b.AddNode("m", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, m, "e", 2).ok());
  ASSERT_TRUE(b.AddEdge(m, y, "e", 3).ok());
  Hin g = Unwrap(std::move(b).Build());
  PathSim ps = Unwrap(PathSim::Build(g, {"e", "e"}));
  EXPECT_DOUBLE_EQ(ps.PathCount(x, y), 6.0);
}

TEST(Relatedness, CheaperPathsScoreHigher) {
  auto w = MakeSmallWorld();
  RelatednessOptions opt;
  Relatedness rel = Relatedness::Build(w.graph, opt);
  EXPECT_DOUBLE_EQ(rel.Score(w.a0, w.a0), 1.0);
  double direct = rel.Score(w.a0, w.a1);   // 1 hop
  double indirect = rel.Score(w.a0, w.b1); // several hops
  EXPECT_GT(direct, indirect);
  EXPECT_GT(indirect, 0.0);
}

TEST(Relatedness, HierarchyEdgesAreCheaper) {
  auto w = MakeSmallWorld();
  RelatednessOptions opt;
  opt.hierarchy_cost = 1.0;
  opt.property_cost = 5.0;
  Relatedness rel = Relatedness::Build(w.graph, opt);
  // a0 -> CatA is one is_a hop: score 1/(1+1).
  EXPECT_DOUBLE_EQ(rel.Score(w.a0, w.cat_a), 0.5);
  // a0 -> a1 via rel edge costs 5, but via CatA (2 is_a hops) costs 2.
  EXPECT_DOUBLE_EQ(rel.Score(w.a0, w.a1), 1.0 / 3.0);
}

TEST(Relatedness, UnreachableWithinBudgetScoresZero) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  (void)y;
  Hin g = Unwrap(std::move(b).Build());
  RelatednessOptions opt;
  Relatedness rel = Relatedness::Build(g, opt);
  EXPECT_DOUBLE_EQ(rel.Score(x, y), 0.0);
}

TEST(Line, EmbedsCommunitiesCloserThanStrangers) {
  // Two 6-cliques joined by one bridge edge: embeddings should place
  // intra-clique pairs closer than cross-clique pairs.
  HinBuilder b;
  std::vector<NodeId> left, right;
  for (int i = 0; i < 6; ++i) left.push_back(b.AddNode("l" + std::to_string(i), "t"));
  for (int i = 0; i < 6; ++i) right.push_back(b.AddNode("r" + std::to_string(i), "t"));
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      ASSERT_TRUE(b.AddUndirectedEdge(left[i], left[j], "e", 1).ok());
      ASSERT_TRUE(b.AddUndirectedEdge(right[i], right[j], "e", 1).ok());
    }
  }
  ASSERT_TRUE(b.AddUndirectedEdge(left[0], right[0], "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());

  LineOptions opt;
  opt.dimensions = 16;
  opt.samples = 200000;
  opt.seed = 5;
  LineEmbedding emb = LineEmbedding::Train(g, opt);
  EXPECT_EQ(emb.width(), 32);  // both orders concatenated

  double intra = emb.Score(left[1], left[2]);
  double cross = emb.Score(left[1], right[2]);
  EXPECT_GT(intra, cross);
  EXPECT_DOUBLE_EQ(emb.Score(left[1], left[1]), 1.0);
  // Scores are in [0,1].
  EXPECT_GE(cross, 0.0);
  EXPECT_LE(intra, 1.0);
}

TEST(Line, OrderOneOnlyHasHalfWidth) {
  auto w = MakeSmallWorld();
  LineOptions opt;
  opt.dimensions = 8;
  opt.order = 1;
  opt.samples = 10000;
  LineEmbedding emb = LineEmbedding::Train(w.graph, opt);
  EXPECT_EQ(emb.width(), 8);
}

TEST(Combiners, MultiplicationAndAverage) {
  NamedSimilarity s1{"s1", [](NodeId, NodeId) { return 0.5; }};
  NamedSimilarity s2{"s2", [](NodeId, NodeId) { return 0.8; }};
  NamedSimilarity mult = MultiplicationCombiner(s1, s2);
  NamedSimilarity avg = AverageCombiner(s1, s2);
  EXPECT_DOUBLE_EQ(mult.score(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(avg.score(0, 1), 0.65);
  EXPECT_EQ(mult.name, "Multiplication");
  EXPECT_EQ(avg.name, "Average");
}

}  // namespace
}  // namespace semsim

#include "core/topk.h"

#include <gtest/gtest.h>

#include "core/iterative.h"
#include "core/semsim_engine.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(MatrixTopK, OrdersByScoreThenId) {
  ScoreMatrix m(4);
  m.set(0, 1, 0.9);
  m.set(0, 2, 0.9);
  m.set(0, 3, 0.5);
  auto top = MatrixTopK(m, 0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].node, 1u);  // tie with 2, lower id wins
  EXPECT_EQ(top[1].node, 2u);
  EXPECT_EQ(top[2].node, 3u);
}

TEST(MatrixTopK, ExcludesQueryAndHonorsCandidates) {
  ScoreMatrix m(5);
  m.set(0, 1, 0.1);
  m.set(0, 2, 0.9);
  m.set(0, 3, 0.8);
  std::vector<NodeId> candidates = {0, 1, 3};
  auto top = MatrixTopK(m, 0, 10, &candidates);
  ASSERT_EQ(top.size(), 2u);  // query itself excluded
  EXPECT_EQ(top[0].node, 3u);
  EXPECT_EQ(top[1].node, 1u);
}

TEST(MatrixTopK, KLargerThanCandidates) {
  ScoreMatrix m(3);
  m.set(0, 1, 0.4);
  m.set(0, 2, 0.6);
  auto top = MatrixTopK(m, 0, 99);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 2u);
}

TEST(McTopK, AgreesWithExhaustiveEstimatorRanking) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndexOptions wopt;
  wopt.num_walks = 400;
  wopt.walk_length = 12;
  WalkIndex index = WalkIndex::Build(w.graph, wopt);
  SemSimMcEstimator est(&w.graph, &lin, &index);
  SemSimMcOptions opt;
  opt.decay = 0.6;

  auto top = McTopK(est, w.a0, 3, opt);
  ASSERT_EQ(top.size(), 3u);
  // Verify against brute force.
  std::vector<Scored> all;
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    if (v == w.a0) continue;
    all.push_back({v, est.Query(w.a0, v, opt)});
  }
  std::sort(all.begin(), all.end(), [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score > b.score : a.node < b.node;
  });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top[i].node, all[i].node);
    EXPECT_DOUBLE_EQ(top[i].score, all[i].score);
  }
}

TEST(SemSimEngine, EndToEndQueries) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  SemSimEngineOptions opt;
  opt.walks.num_walks = 300;
  opt.walks.walk_length = 12;
  opt.query.mc.decay = 0.6;
  opt.query.mc.theta = 0.05;
  SemSimEngine engine = Unwrap(SemSimEngine::Create(&w.graph, &lin, opt));

  EXPECT_DOUBLE_EQ(engine.Similarity(w.a0, w.a0), 1.0);
  double by_id = engine.Similarity(w.a0, w.a1);
  double by_name = Unwrap(engine.SimilarityByName("a0", "a1"));
  EXPECT_DOUBLE_EQ(by_id, by_name);
  EXPECT_FALSE(engine.SimilarityByName("a0", "ghost").ok());

  auto top = engine.TopK(w.a0, 2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_GT(engine.MemoryBytes(), 0u);
}

TEST(SemSimEngine, ValidatesOptions) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  SemSimEngineOptions opt;
  opt.query.mc.decay = 0.6;
  opt.query.mc.theta = 0.5;  // violates θ <= 1-c (Lemma 4.7)
  EXPECT_FALSE(SemSimEngine::Create(&w.graph, &lin, opt).ok());
  opt.query.mc.theta = 0.05;
  EXPECT_FALSE(SemSimEngine::Create(nullptr, &lin, opt).ok());
  EXPECT_FALSE(SemSimEngine::Create(&w.graph, nullptr, opt).ok());
  opt.query.mc.decay = 1.2;
  EXPECT_FALSE(SemSimEngine::Create(&w.graph, &lin, opt).ok());
}

TEST(SemSimEngine, SingleSourceEngineMatchesPairwiseTopK) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  SemSimEngineOptions opt;
  opt.walks.num_walks = 150;
  opt.walks.walk_length = 10;
  opt.query.mc = {0.6, 0.0};
  SemSimEngine plain = Unwrap(SemSimEngine::Create(&w.graph, &lin, opt));
  opt.single_source = true;
  SemSimEngine fast = Unwrap(SemSimEngine::Create(&w.graph, &lin, opt));

  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    auto a = plain.TopK(u, 4);
    auto b = fast.TopK(u, 4);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node) << "u=" << u << " rank " << i;
      EXPECT_NEAR(a[i].score, b[i].score, 1e-10);
    }
  }
  // AllScores is only available on the single-source engine.
  EXPECT_FALSE(plain.AllScores(w.a0).ok());
  auto scores = Unwrap(fast.AllScores(w.a0));
  EXPECT_EQ(scores.size(), w.graph.num_nodes());
  EXPECT_DOUBLE_EQ(scores[w.a0], 1.0);
  EXPECT_GT(fast.MemoryBytes(), plain.MemoryBytes());
}

TEST(SemSimEngine, SingleSourceRespectsCandidateFilter) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  SemSimEngineOptions opt;
  opt.walks.num_walks = 100;
  opt.walks.walk_length = 8;
  opt.query.mc = {0.6, 0.0};
  opt.single_source = true;
  SemSimEngine engine = Unwrap(SemSimEngine::Create(&w.graph, &lin, opt));
  std::vector<NodeId> candidates = {w.a1, w.b0};
  auto top = engine.TopK(w.a0, 10, &candidates);
  ASSERT_EQ(top.size(), 2u);
  for (const Scored& s : top) {
    EXPECT_TRUE(s.node == w.a1 || s.node == w.b0);
  }
}

TEST(SemSimEngine, CacheBackedEngineMatchesPlain) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  SemSimEngineOptions opt;
  opt.walks.num_walks = 200;
  opt.walks.walk_length = 10;
  SemSimEngine plain = Unwrap(SemSimEngine::Create(&w.graph, &lin, opt));
  opt.cache_min_sem = 0.0;
  SemSimEngine cached = Unwrap(SemSimEngine::Create(&w.graph, &lin, opt));
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < u; ++v) {
      double a = plain.Similarity(u, v);
      double b = cached.Similarity(u, v);
      EXPECT_NEAR(a, b, 1e-12 + 1e-9 * std::abs(a));
    }
  }
  EXPECT_GT(cached.MemoryBytes(), plain.MemoryBytes());
}

}  // namespace
}  // namespace semsim

#include "eval/clustering.h"

#include <gtest/gtest.h>

#include "core/iterative.h"
#include "datasets/amazon_gen.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

TEST(AgglomerativeCluster, SeparatesTwoObviousBlocks) {
  // Similarity oracle: nodes 0-2 form one block, 3-5 another.
  NamedSimilarity oracle{"oracle", [](NodeId a, NodeId b) {
                           bool same = (a < 3) == (b < 3);
                           return same ? 0.9 : 0.1;
                         }};
  std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5};
  ClusteringOptions opt;
  opt.num_clusters = 2;
  std::vector<int> clusters = AgglomerativeCluster(oracle, nodes, opt);
  ASSERT_EQ(clusters.size(), 6u);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[1], clusters[2]);
  EXPECT_EQ(clusters[3], clusters[4]);
  EXPECT_EQ(clusters[4], clusters[5]);
  EXPECT_NE(clusters[0], clusters[3]);
}

TEST(AgglomerativeCluster, MinSimilarityStopsMerging) {
  NamedSimilarity oracle{"oracle", [](NodeId a, NodeId b) {
                           bool same = (a < 2) == (b < 2);
                           return same ? 0.9 : 0.05;
                         }};
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  ClusteringOptions opt;
  opt.num_clusters = 1;     // would merge everything...
  opt.min_similarity = 0.5;  // ...but the threshold stops at 2 blocks
  std::vector<int> clusters = AgglomerativeCluster(oracle, nodes, opt);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[2], clusters[3]);
  EXPECT_NE(clusters[0], clusters[2]);
}

TEST(AgglomerativeCluster, EmptyAndSingleton) {
  NamedSimilarity oracle{"oracle", [](NodeId, NodeId) { return 1.0; }};
  ClusteringOptions opt;
  EXPECT_TRUE(AgglomerativeCluster(oracle, {}, opt).empty());
  std::vector<int> one = AgglomerativeCluster(oracle, {7}, opt);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0);
}

TEST(ClusterPurity, PerfectAndMixed) {
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 1, 1}, {5, 5, 9, 9}), 1.0);
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 0, 0}, {1, 1, 2, 2}), 0.5);
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 1, 2, 3}, {1, 1, 1, 1}), 1.0);
}

TEST(AdjustedRandIndex, KnownValues) {
  // Identical partitions → 1.
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 1, 1}, {3, 3, 7, 7}), 1.0);
  // Completely split vs completely merged → 0 (chance level).
  EXPECT_NEAR(AdjustedRandIndex({0, 1, 2, 3}, {1, 1, 1, 1}), 0.0, 1e-12);
  // Partial agreement strictly between.
  double ari = AdjustedRandIndex({0, 0, 1, 1, 1}, {0, 0, 0, 1, 1});
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(Clustering, SemSimRecoversCategoriesOnGeneratedData) {
  AmazonOptions gen;
  gen.num_items = 120;
  gen.category_branching = {2, 3};  // 6 leaf categories
  gen.seed = 19;
  Dataset d = Unwrap(GenerateAmazon(gen));
  LinMeasure lin(&d.context);
  ScoreMatrix semsim = Unwrap(ComputeSemSim(d.graph, lin, 0.6, 8, nullptr));

  // Cluster a sample of items; reference label = leaf category.
  std::vector<NodeId> items;
  std::vector<int> labels;
  const Taxonomy& tax = d.context.taxonomy();
  for (NodeId v = 0; v < d.graph.num_nodes() && items.size() < 60; ++v) {
    if (d.graph.label_name(d.graph.node_label(v)) == "item") {
      items.push_back(v);
      labels.push_back(static_cast<int>(tax.parent(d.context.concept_of(v))));
    }
  }
  NamedSimilarity fn{"SemSim",
                     [&](NodeId a, NodeId b) { return semsim.at(a, b); }};
  ClusteringOptions opt;
  opt.num_clusters = 6;
  std::vector<int> clusters = AgglomerativeCluster(fn, items, opt);
  double purity = ClusterPurity(clusters, labels);
  // Category structure must be substantially recovered (chance ≈ 1/6 for
  // balanced categories, higher under the Zipf skew; require well above).
  EXPECT_GT(purity, 0.6);
  EXPECT_GT(AdjustedRandIndex(clusters, labels), 0.2);
}

}  // namespace
}  // namespace semsim

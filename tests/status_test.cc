#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace semsim {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad weight");
}

TEST(Status, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    SEMSIM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  Status s = outer();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, AssignOrReturnMacro) {
  auto source = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("boom");
  };
  auto chain = [&](bool ok) -> Result<int> {
    SEMSIM_ASSIGN_OR_RETURN(int x, source(ok));
    return x * 2;
  };
  EXPECT_EQ(chain(true).value(), 10);
  EXPECT_EQ(chain(false).status().code(), StatusCode::kInternal);
}

TEST(Result, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 3);
}

}  // namespace
}  // namespace semsim

#include "core/dynamic_walk_index.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "core/mc_simrank.h"
#include "core/mc_semsim.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

// Checks every live step of every walk is a valid in-neighbor in `g`,
// and that the compact layout's live lengths still describe exactly the
// non-padded prefix after in-place updates.
void CheckWalksValid(const WalkIndex& index, const Hin& g) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int w = 0; w < index.num_walks(); ++w) {
      auto walk = index.Walk(v, w);
      int expected_len = index.walk_length();
      NodeId cur = v;
      for (int s = 0; s < index.walk_length(); ++s) {
        if (walk[s] == kInvalidNode) {
          ASSERT_TRUE(g.InNeighbors(cur).empty() || s > 0);
          expected_len = s;
          // Once dead, stays dead.
          for (int r = s; r < index.walk_length(); ++r) {
            ASSERT_EQ(walk[r], kInvalidNode);
          }
          break;
        }
        bool found = false;
        for (const Neighbor& nb : g.InNeighbors(cur)) {
          if (nb.node == walk[s]) {
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found) << "stale step after update";
        cur = walk[s];
      }
      ASSERT_EQ(index.WalkLiveLength(v, w), expected_len)
          << "live length out of sync after update, node " << v << " walk "
          << w;
    }
  }
}

TEST(DynamicWalkIndex, EmptyDirtySetIsNoOp) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 50;
  opt.walk_length = 8;
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, opt);
  WalkIndex before = dyn.view();  // copy
  size_t resampled = Unwrap(dyn.Update(&w.graph, {}));
  EXPECT_EQ(resampled, 0u);
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto a = before.Walk(v, k);
      auto b = dyn.view().Walk(v, k);
      for (int s = 0; s < opt.walk_length; ++s) ASSERT_EQ(a[s], b[s]);
    }
  }
}

TEST(DynamicWalkIndex, EdgeAdditionResamplesOnlyAffectedWalks) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 60;
  opt.walk_length = 10;
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, opt);
  WalkIndex before = dyn.view();

  // New version: b1 also relates to a0 (changes in-neighborhoods of both).
  HinBuilder builder = w.graph.ToBuilder();
  ASSERT_TRUE(builder.AddUndirectedEdge(w.b1, w.a0, "rel", 1.0).ok());
  Hin updated = Unwrap(std::move(builder).Build());
  std::vector<NodeId> dirty = {w.b1, w.a0};

  size_t resampled = Unwrap(dyn.Update(&updated, dirty));
  EXPECT_GT(resampled, 0u);
  CheckWalksValid(dyn.view(), updated);

  // Walks that never visited a dirty node are bit-identical.
  size_t untouched = 0;
  for (NodeId v = 0; v < updated.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto old_walk = before.Walk(v, k);
      bool visits_dirty = v == w.b1 || v == w.a0;
      for (int s = 0; s < opt.walk_length && !visits_dirty; ++s) {
        if (old_walk[s] == kInvalidNode) break;
        if (old_walk[s] == w.b1 || old_walk[s] == w.a0) visits_dirty = true;
      }
      if (!visits_dirty) {
        auto new_walk = dyn.view().Walk(v, k);
        for (int s = 0; s < opt.walk_length; ++s) {
          ASSERT_EQ(old_walk[s], new_walk[s]);
        }
        ++untouched;
      }
    }
  }
  EXPECT_GT(untouched, 0u);
}

TEST(DynamicWalkIndex, UpdatedIndexMatchesFreshIndexStatistically) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 4000;
  opt.walk_length = 10;
  opt.seed = 21;
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, opt);

  HinBuilder builder = w.graph.ToBuilder();
  ASSERT_TRUE(builder.AddUndirectedEdge(w.a0, w.b1, "rel", 2.0).ok());
  Hin updated = Unwrap(std::move(builder).Build());
  Unwrap(dyn.Update(&updated, std::vector<NodeId>{w.a0, w.b1}));

  WalkIndexOptions fresh_opt = opt;
  fresh_opt.seed = 99;  // independent sample
  WalkIndex fresh = WalkIndex::Build(updated, fresh_opt);

  // SimRank estimates from the incrementally updated index must agree
  // with estimates from a freshly built index on the new graph.
  for (NodeId u : {w.a0, w.a1, w.b0}) {
    for (NodeId v : {w.b1, w.a2, w.cat_a}) {
      if (u == v) continue;
      double updated_est = McSimRankQuery(dyn.view(), u, v, 0.6);
      double fresh_est = McSimRankQuery(fresh, u, v, 0.6);
      EXPECT_NEAR(updated_est, fresh_est, 0.03)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(DynamicWalkIndex, WeightedAliasUpdateKeepsWalksValidAndUnbiased) {
  // Weighted proposal on the alias (default) path: Update must lazily
  // build the sampler over the new graph, keep every resampled suffix a
  // valid weighted walk, and stay statistically indistinguishable from
  // a fresh weighted build.
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 4000;
  opt.walk_length = 10;
  opt.seed = 33;
  opt.weighted = true;
  ASSERT_EQ(opt.sampler, SamplerKind::kAlias);
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, opt);

  HinBuilder builder = w.graph.ToBuilder();
  ASSERT_TRUE(builder.AddUndirectedEdge(w.a0, w.b1, "rel", 4.0).ok());
  Hin updated = Unwrap(std::move(builder).Build());
  size_t resampled =
      Unwrap(dyn.Update(&updated, std::vector<NodeId>{w.a0, w.b1}));
  EXPECT_GT(resampled, 0u);
  CheckWalksValid(dyn.view(), updated);

  WalkIndexOptions fresh_opt = opt;
  fresh_opt.seed = 77;  // independent sample
  WalkIndex fresh = WalkIndex::Build(updated, fresh_opt);
  for (NodeId u : {w.a0, w.a1, w.b0}) {
    for (NodeId v : {w.b1, w.a2, w.cat_a}) {
      if (u == v) continue;
      EXPECT_NEAR(McSimRankQuery(dyn.view(), u, v, 0.6),
                  McSimRankQuery(fresh, u, v, 0.6), 0.03)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(DynamicWalkIndex, EdgeRemovalInvalidatesStaleSteps) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 80;
  opt.walk_length = 10;
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, opt);

  // Remove the a0<->a1 relation entirely.
  HinBuilder builder;
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    builder.AddNode(std::string(w.graph.node_name(v)),
                    w.graph.label_name(w.graph.node_label(v)));
  }
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (const Neighbor& nb : w.graph.OutNeighbors(v)) {
      bool removed = (v == w.a0 && nb.node == w.a1) ||
                     (v == w.a1 && nb.node == w.a0);
      if (!removed) {
        ASSERT_TRUE(builder
                        .AddEdge(v, nb.node,
                                 w.graph.label_name(nb.edge_label), nb.weight)
                        .ok());
      }
    }
  }
  Hin updated = Unwrap(std::move(builder).Build());
  Unwrap(dyn.Update(&updated, std::vector<NodeId>{w.a0, w.a1}));
  CheckWalksValid(dyn.view(), updated);
  // No walk may step a0 -> a1 or a1 -> a0 anymore.
  for (NodeId v = 0; v < updated.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto walk = dyn.view().Walk(v, k);
      NodeId cur = v;
      for (int s = 0; s < opt.walk_length; ++s) {
        if (walk[s] == kInvalidNode) break;
        ASSERT_FALSE(cur == w.a0 && walk[s] == w.a1);
        ASSERT_FALSE(cur == w.a1 && walk[s] == w.a0);
        cur = walk[s];
      }
    }
  }
}

TEST(DynamicWalkIndex, AdoptPromotesMappedIndexToOwned) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 20;
  opt.walk_length = 6;
  WalkIndex built = WalkIndex::Build(w.graph, opt);
  std::string path = ::testing::TempDir() + "semsim_dyn_mapped.widx";
  ASSERT_TRUE(built.Save(path).ok());
  WalkIndex mapped = Unwrap(WalkIndex::Map(path, w.graph.num_nodes()));
  ASSERT_TRUE(mapped.mapped());

  // A mapped index is read-only: Adopt must COW-promote it to owned
  // storage before any in-place resampling is allowed.
  DynamicWalkIndex dyn =
      Unwrap(DynamicWalkIndex::Adopt(&w.graph, std::move(mapped)));
  EXPECT_FALSE(dyn.view().mapped());
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    for (int k = 0; k < opt.num_walks; ++k) {
      auto a = built.Walk(v, k);
      auto b = dyn.view().Walk(v, k);
      for (int s = 0; s < opt.walk_length; ++s) ASSERT_EQ(a[s], b[s]);
    }
  }

  // After promotion, updates work against the writable copy.
  HinBuilder builder = w.graph.ToBuilder();
  ASSERT_TRUE(builder.AddUndirectedEdge(w.b1, w.a0, "rel", 1.0).ok());
  Hin updated = Unwrap(std::move(builder).Build());
  size_t resampled =
      Unwrap(dyn.Update(&updated, std::vector<NodeId>{w.b1, w.a0}));
  EXPECT_GT(resampled, 0u);
  CheckWalksValid(dyn.view(), updated);
  std::remove(path.c_str());
}

TEST(DynamicWalkIndex, AdoptRejectsShapeMismatch) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 10;
  opt.walk_length = 5;
  WalkIndex built = WalkIndex::Build(w.graph, opt);
  HinBuilder b;
  b.AddNode("only", "t");
  b.AddNode("other", "t");
  Hin small = Unwrap(std::move(b).Build());
  auto result = DynamicWalkIndex::Adopt(&small, std::move(built));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DynamicWalkIndex, RejectsInvalidUpdates) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 5;
  opt.walk_length = 5;
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, opt);
  EXPECT_FALSE(dyn.Update(nullptr, {}).ok());
  HinBuilder b;
  b.AddNode("only", "t");
  Hin small = Unwrap(std::move(b).Build());
  EXPECT_FALSE(dyn.Update(&small, {}).ok());
  std::vector<NodeId> bad = {static_cast<NodeId>(w.graph.num_nodes() + 5)};
  EXPECT_FALSE(dyn.Update(&w.graph, bad).ok());
}

}  // namespace
}  // namespace semsim

#include "taxonomy/ic.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

Taxonomy MakeTree() {
  // root -> {a (3 kids), b (1 kid)}
  TaxonomyBuilder builder;
  ConceptId root = builder.AddConcept("root");
  ConceptId a = builder.AddConcept("a", root);
  ConceptId b = builder.AddConcept("b", root);
  builder.AddConcept("a1", a);
  builder.AddConcept("a2", a);
  builder.AddConcept("a3", a);
  builder.AddConcept("b1", b);
  return Unwrap(std::move(builder).Build());
}

TEST(SecoIc, LeavesGetOne) {
  Taxonomy t = MakeTree();
  std::vector<double> ic = ComputeSecoIc(t);
  for (ConceptId c = 0; c < t.num_concepts(); ++c) {
    if (t.IsLeaf(c)) {
      EXPECT_DOUBLE_EQ(ic[c], 1.0) << t.name(c);
    }
  }
}

TEST(SecoIc, RootClampsToFloor) {
  Taxonomy t = MakeTree();
  std::vector<double> ic = ComputeSecoIc(t, 0.01);
  EXPECT_DOUBLE_EQ(ic[t.root()], 0.01);
}

TEST(SecoIc, MoreHyponymsMeansLowerIc) {
  Taxonomy t = MakeTree();
  std::vector<double> ic = ComputeSecoIc(t);
  ConceptId a = Unwrap(t.FindConcept("a"));
  ConceptId b = Unwrap(t.FindConcept("b"));
  EXPECT_LT(ic[a], ic[b]);  // a has 3 descendants, b has 1
  EXPECT_LT(ic[t.root()], ic[a]);
}

TEST(SecoIc, AllValuesInUnitInterval) {
  Taxonomy t = MakeTree();
  std::vector<double> ic = ComputeSecoIc(t, 1e-3);
  for (double v : ic) {
    EXPECT_GE(v, 1e-3);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SecoIc, SingletonTaxonomy) {
  TaxonomyBuilder b;
  b.AddConcept("only");
  Taxonomy t = Unwrap(std::move(b).Build());
  std::vector<double> ic = ComputeSecoIc(t);
  EXPECT_DOUBLE_EQ(ic[0], 1.0);
}

TEST(CorpusIc, PrevalentConceptsGetLowIc) {
  Taxonomy t = MakeTree();
  std::vector<double> counts(t.num_concepts(), 0.0);
  counts[Unwrap(t.FindConcept("a1"))] = 100;  // very frequent
  counts[Unwrap(t.FindConcept("a2"))] = 1;
  counts[Unwrap(t.FindConcept("b1"))] = 1;
  std::vector<double> ic = ComputeCorpusIc(t, counts);
  EXPECT_LT(ic[Unwrap(t.FindConcept("a1"))],
            ic[Unwrap(t.FindConcept("a2"))]);
  // Parent accumulates children's counts: a is more frequent than b.
  EXPECT_LT(ic[Unwrap(t.FindConcept("a"))], ic[Unwrap(t.FindConcept("b"))]);
  // Root has everything → minimal IC (the floor).
  EXPECT_DOUBLE_EQ(ic[t.root()], 1e-3);
}

TEST(CorpusIc, ZeroCountConceptsGetMaxIc) {
  Taxonomy t = MakeTree();
  std::vector<double> counts(t.num_concepts(), 0.0);
  counts[Unwrap(t.FindConcept("a1"))] = 5;
  std::vector<double> ic = ComputeCorpusIc(t, counts);
  EXPECT_DOUBLE_EQ(ic[Unwrap(t.FindConcept("b1"))], 1.0);
}

TEST(CorpusIc, AllZeroCountsFallBackToOne) {
  Taxonomy t = MakeTree();
  std::vector<double> counts(t.num_concepts(), 0.0);
  std::vector<double> ic = ComputeCorpusIc(t, counts);
  for (double v : ic) EXPECT_DOUBLE_EQ(v, 1.0);
}

}  // namespace
}  // namespace semsim

#include "taxonomy/lca.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

Taxonomy RandomTree(size_t n, uint64_t seed) {
  Rng rng(seed);
  TaxonomyBuilder b;
  b.AddConcept("c0");
  for (size_t i = 1; i < n; ++i) {
    // Parent uniformly among earlier concepts: random recursive tree.
    ConceptId parent = static_cast<ConceptId>(rng.NextIndex(i));
    b.AddConcept("c" + std::to_string(i), parent);
  }
  return Unwrap(std::move(b).Build());
}

TEST(LcaIndex, MatchesSlowLcaOnRandomTrees) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Taxonomy t = RandomTree(200, seed);
    LcaIndex index(t);
    Rng rng(seed + 100);
    for (int q = 0; q < 2000; ++q) {
      ConceptId a = static_cast<ConceptId>(rng.NextIndex(t.num_concepts()));
      ConceptId b = static_cast<ConceptId>(rng.NextIndex(t.num_concepts()));
      ASSERT_EQ(index.Lca(a, b), t.LcaSlow(a, b))
          << "seed=" << seed << " a=" << a << " b=" << b;
    }
  }
}

TEST(LcaIndex, SelfAndAncestorQueries) {
  TaxonomyBuilder b;
  ConceptId root = b.AddConcept("root");
  ConceptId mid = b.AddConcept("mid", root);
  ConceptId leaf = b.AddConcept("leaf", mid);
  Taxonomy t = Unwrap(std::move(b).Build());
  LcaIndex index(t);
  EXPECT_EQ(index.Lca(leaf, leaf), leaf);
  EXPECT_EQ(index.Lca(leaf, mid), mid);
  EXPECT_EQ(index.Lca(mid, leaf), mid);
  EXPECT_EQ(index.Lca(leaf, root), root);
}

TEST(LcaIndex, SingleNodeTree) {
  TaxonomyBuilder b;
  b.AddConcept("only");
  Taxonomy t = Unwrap(std::move(b).Build());
  LcaIndex index(t);
  EXPECT_EQ(index.Lca(0, 0), 0u);
}

TEST(LcaIndex, ReportsMemory) {
  Taxonomy t = RandomTree(500, 9);
  LcaIndex index(t);
  EXPECT_GT(index.MemoryBytes(), 500u * sizeof(ConceptId));
}

TEST(LcaIndex, DeepChainTree) {
  TaxonomyBuilder b;
  ConceptId prev = b.AddConcept("c0");
  std::vector<ConceptId> chain = {prev};
  for (int i = 1; i < 300; ++i) {
    prev = b.AddConcept("c" + std::to_string(i), prev);
    chain.push_back(prev);
  }
  Taxonomy t = Unwrap(std::move(b).Build());
  LcaIndex index(t);
  EXPECT_EQ(index.Lca(chain[299], chain[150]), chain[150]);
  EXPECT_EQ(index.Lca(chain[10], chain[299]), chain[10]);
}

}  // namespace
}  // namespace semsim

#include "graph/hin.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

TEST(HinBuilder, BuildsCsrBothDirections) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t1");
  NodeId y = b.AddNode("y", "t2");
  NodeId z = b.AddNode("z", "t1");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 2.0).ok());
  ASSERT_TRUE(b.AddEdge(z, y, "f", 3.0).ok());
  ASSERT_TRUE(b.AddEdge(y, x, "e", 1.0).ok());
  Hin g = Unwrap(std::move(b).Build());

  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(x), 1u);
  EXPECT_EQ(g.InDegree(y), 2u);
  EXPECT_EQ(g.InDegree(x), 1u);
  EXPECT_EQ(g.OutDegree(y), 1u);

  auto in_y = g.InNeighbors(y);
  ASSERT_EQ(in_y.size(), 2u);
  EXPECT_EQ(in_y[0].node, x);  // sorted by source id
  EXPECT_DOUBLE_EQ(in_y[0].weight, 2.0);
  EXPECT_EQ(in_y[1].node, z);
  EXPECT_DOUBLE_EQ(in_y[1].weight, 3.0);
  EXPECT_DOUBLE_EQ(g.TotalInWeight(y), 5.0);
}

TEST(HinBuilder, RejectsNonPositiveWeights) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  EXPECT_FALSE(b.AddEdge(x, y, "e", 0.0).ok());
  EXPECT_FALSE(b.AddEdge(x, y, "e", -1.0).ok());
}

TEST(HinBuilder, RejectsOutOfRangeEndpoints) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  EXPECT_FALSE(b.AddEdge(x, 5, "e", 1.0).ok());
  EXPECT_FALSE(b.AddEdge(9, x, "e", 1.0).ok());
}

TEST(Hin, LabelsAreInterned) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "author");
  NodeId y = b.AddNode("y", "author");
  ASSERT_TRUE(b.AddEdge(x, y, "co", 1.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  EXPECT_EQ(g.node_label(x), g.node_label(y));
  EXPECT_EQ(g.label_name(g.node_label(x)), "author");
  EXPECT_NE(g.FindLabel("co"), kInvalidLabel);
  EXPECT_EQ(g.FindLabel("nope"), kInvalidLabel);
}

TEST(Hin, FindNodeByName) {
  auto w = testutil::MakeSmallWorld();
  EXPECT_EQ(Unwrap(w.graph.FindNode("a0")), w.a0);
  EXPECT_FALSE(w.graph.FindNode("ghost").ok());
}

TEST(Hin, InEdgeInfoAggregatesParallelEdges) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 2.0).ok());
  ASSERT_TRUE(b.AddEdge(x, y, "f", 3.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  Hin::EdgeInfo info = g.InEdgeInfo(y, x);
  EXPECT_DOUBLE_EQ(info.total_weight, 5.0);
  EXPECT_EQ(info.multiplicity, 2u);
  Hin::EdgeInfo none = g.InEdgeInfo(x, x);
  EXPECT_DOUBLE_EQ(none.total_weight, 0.0);
  EXPECT_EQ(none.multiplicity, 0u);
}

TEST(Hin, ReversedSwapsAdjacency) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 2.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  Hin r = g.Reversed();
  EXPECT_EQ(r.OutDegree(y), 1u);
  EXPECT_EQ(r.InDegree(x), 1u);
  EXPECT_EQ(r.OutDegree(x), 0u);
  EXPECT_DOUBLE_EQ(r.TotalInWeight(x), 2.0);
}

TEST(Hin, SymmetrizedDoublesDirectedEdges) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 2.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  Hin s = g.Symmetrized();
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_EQ(s.OutDegree(y), 1u);
  EXPECT_EQ(s.OutNeighbors(y)[0].node, x);
  EXPECT_DOUBLE_EQ(s.OutNeighbors(y)[0].weight, 2.0);
}

TEST(Hin, AverageInDegree) {
  auto w = testutil::MakeSmallWorld();
  EXPECT_DOUBLE_EQ(
      w.graph.AverageInDegree(),
      static_cast<double>(w.graph.num_edges()) / w.graph.num_nodes());
}

TEST(HinBuilder, UndirectedEdgeAddsBothDirections) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddUndirectedEdge(x, y, "e", 4.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.InDegree(x), 1u);
  EXPECT_EQ(g.InDegree(y), 1u);
}

}  // namespace
}  // namespace semsim

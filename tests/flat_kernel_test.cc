#include "core/mc_kernels.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/batch_engine.h"
#include "core/mc_semsim.h"
#include "core/single_source.h"
#include "core/walk_index.h"
#include "datasets/aminer_gen.h"
#include "datasets/figure1.h"
#include "graph/transition_table.h"
#include "taxonomy/flat_semantic_table.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

Dataset Figure1() { return Unwrap(MakeFigure1Dataset()); }

Dataset Aminer() {
  AminerOptions opt;
  opt.num_authors = 180;
  opt.seed = 7;
  return Unwrap(GenerateAminer(opt));
}

std::vector<NodePair> MakePairs(size_t num_nodes, size_t count) {
  std::vector<NodePair> pairs;
  Rng rng(1234);
  for (size_t i = 0; i < count; ++i) {
    NodeId u = static_cast<NodeId>(i % num_nodes);
    NodeId v = static_cast<NodeId>(rng.NextIndex(num_nodes));
    pairs.push_back(NodePair{u, v});
  }
  return pairs;
}

// ---------------------------------------------------------------------------
// Layer 1: the devirtualized measure kernels agree with their virtual
// counterparts bit-for-bit, on every node pair.
// ---------------------------------------------------------------------------

TEST(FlatSemanticTable, LcaMatchesContext) {
  for (const Dataset& d : {Figure1(), Aminer()}) {
    FlatSemanticTable table = FlatSemanticTable::Build(d.context);
    size_t concepts = table.num_concepts();
    for (ConceptId a = 0; a < concepts; ++a) {
      for (ConceptId b = 0; b < concepts; ++b) {
        ASSERT_EQ(table.Lca(a, b), d.context.Lca(a, b))
            << "concepts " << a << "," << b;
      }
    }
    for (NodeId u = 0; u < d.graph.num_nodes(); ++u) {
      for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
        ASSERT_EQ(table.LcaOfNodes(u, v),
                  d.context.Lca(d.context.concept_of(u),
                                d.context.concept_of(v)));
      }
    }
  }
}

template <typename Measure, typename Kernel>
void CheckSimEquivalence(const Dataset& d) {
  Measure measure(&d.context);
  FlatSemanticTable table = FlatSemanticTable::Build(d.context);
  Kernel kernel{&table};
  for (NodeId u = 0; u < d.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
      // Bit-equality, not tolerance: the kernels mirror the formulas.
      ASSERT_EQ(kernel.Sim(u, v), measure.Sim(u, v))
          << measure.name() << " nodes " << u << "," << v;
    }
  }
}

TEST(FlatSemanticTable, KernelsMatchVirtualMeasures) {
  for (const Dataset& d : {Figure1(), Aminer()}) {
    CheckSimEquivalence<LinMeasure, FlatLinKernel>(d);
    CheckSimEquivalence<ResnikMeasure, FlatResnikKernel>(d);
    CheckSimEquivalence<WuPalmerMeasure, FlatWuPalmerKernel>(d);
    CheckSimEquivalence<PathMeasure, FlatPathKernel>(d);
  }
}

TEST(MeasureClassification, DetectsFlattenableMeasuresThroughCache) {
  Dataset d = Figure1();
  LinMeasure lin(&d.context);
  ResnikMeasure resnik(&d.context);
  WuPalmerMeasure wp(&d.context);
  PathMeasure path(&d.context);
  JiangConrathMeasure jc(&d.context);
  ConstantMeasure constant;
  EXPECT_EQ(kernels::ClassifyMeasure(&lin).kind, kernels::SemKind::kLin);
  EXPECT_EQ(kernels::ClassifyMeasure(&resnik).kind,
            kernels::SemKind::kResnik);
  EXPECT_EQ(kernels::ClassifyMeasure(&wp).kind, kernels::SemKind::kWuPalmer);
  EXPECT_EQ(kernels::ClassifyMeasure(&path).kind, kernels::SemKind::kPath);
  EXPECT_EQ(kernels::ClassifyMeasure(&jc).kind, kernels::SemKind::kVirtual);
  EXPECT_EQ(kernels::ClassifyMeasure(&constant).kind,
            kernels::SemKind::kVirtual);
  EXPECT_EQ(kernels::ClassifyMeasure(&lin).context, &d.context);
  // The decorator is transparent to classification.
  CachedSemanticMeasure cached(&lin, 1 << 10);
  EXPECT_EQ(kernels::ClassifyMeasure(&cached).kind, kernels::SemKind::kLin);
}

// ---------------------------------------------------------------------------
// Layer 2: estimator-level bit-equality — single-pair, single-source and
// top-k answers are identical with and without the flat kernels.
// ---------------------------------------------------------------------------

template <typename Measure>
void CheckEstimatorEquivalence(const Dataset& d, const char* flat_name) {
  Measure measure(&d.context);
  WalkIndex index = WalkIndex::Build(d.graph,
                                     WalkIndexOptions{40, 8, 13, false});
  TransitionTable transitions = TransitionTable::Build(d.graph);
  FlatSemanticTable semantics = FlatSemanticTable::Build(d.context);

  SemSimMcEstimator generic(&d.graph, &measure, &index);
  SemSimMcEstimator flat(&d.graph, &measure, &index);
  ASSERT_TRUE(flat.AttachFlatKernel(&semantics, &transitions));
  EXPECT_TRUE(flat.flat());
  EXPECT_EQ(flat.sem_kernel_name(), flat_name);
  EXPECT_EQ(generic.sem_kernel_name(), "virtual");

  std::vector<NodePair> pairs = MakePairs(d.graph.num_nodes(), 150);
  for (double theta : {0.0, 0.05}) {
    SemSimMcOptions opt{0.6, theta};
    for (const NodePair& p : pairs) {
      ASSERT_EQ(flat.Query(p.first, p.second, opt),
                generic.Query(p.first, p.second, opt))
          << "pair (" << p.first << "," << p.second << ") theta " << theta;
      ASSERT_EQ(flat.SemValue(p.first, p.second),
                measure.Sim(p.first, p.second));
    }
  }

  SingleSourceIndex inverted =
      SingleSourceIndex::Build(index, d.graph.num_nodes());
  SemSimMcOptions opt{0.6, 0.05};
  for (NodeId u = 0; u < d.graph.num_nodes();
       u += 1 + d.graph.num_nodes() / 8) {
    std::vector<double> sf = inverted.SemSimFrom(u, flat, opt);
    std::vector<double> sg = inverted.SemSimFrom(u, generic, opt);
    ASSERT_EQ(sf.size(), sg.size());
    for (size_t v = 0; v < sf.size(); ++v) ASSERT_EQ(sf[v], sg[v]);
    std::vector<Scored> tf = inverted.TopKFrom(u, 10, flat, opt);
    std::vector<Scored> tg = inverted.TopKFrom(u, 10, generic, opt);
    ASSERT_EQ(tf.size(), tg.size());
    for (size_t i = 0; i < tf.size(); ++i) {
      ASSERT_EQ(tf[i].node, tg[i].node);
      ASSERT_EQ(tf[i].score, tg[i].score);
    }
  }

  // Detach restores the generic path (still bit-identical, of course).
  flat.DetachFlatKernel();
  EXPECT_FALSE(flat.flat());
  ASSERT_EQ(flat.Query(pairs[0].first, pairs[0].second, opt),
            generic.Query(pairs[0].first, pairs[0].second, opt));
}

TEST(FlatKernelEstimator, LinBitIdentical) {
  CheckEstimatorEquivalence<LinMeasure>(Figure1(), "flat-lin");
  CheckEstimatorEquivalence<LinMeasure>(Aminer(), "flat-lin");
}

TEST(FlatKernelEstimator, ResnikBitIdentical) {
  CheckEstimatorEquivalence<ResnikMeasure>(Figure1(), "flat-resnik");
  CheckEstimatorEquivalence<ResnikMeasure>(Aminer(), "flat-resnik");
}

TEST(FlatKernelEstimator, WuPalmerBitIdentical) {
  CheckEstimatorEquivalence<WuPalmerMeasure>(Figure1(), "flat-wupalmer");
  CheckEstimatorEquivalence<WuPalmerMeasure>(Aminer(), "flat-wupalmer");
}

TEST(FlatKernelEstimator, PathBitIdentical) {
  CheckEstimatorEquivalence<PathMeasure>(Figure1(), "flat-path");
  CheckEstimatorEquivalence<PathMeasure>(Aminer(), "flat-path");
}

TEST(FlatKernelEstimator, TransitionTableOnlyFallbackForJiangConrath) {
  // JiangConrath has no flat kernel: AttachFlatKernel must keep the
  // virtual semantics, still use the transition table, and still be
  // bit-identical to the fully generic path.
  Dataset d = Figure1();
  JiangConrathMeasure measure(&d.context);
  WalkIndex index = WalkIndex::Build(d.graph,
                                     WalkIndexOptions{40, 8, 13, false});
  TransitionTable transitions = TransitionTable::Build(d.graph);

  SemSimMcEstimator generic(&d.graph, &measure, &index);
  SemSimMcEstimator flat(&d.graph, &measure, &index);
  EXPECT_FALSE(flat.AttachFlatKernel(nullptr, &transitions));
  EXPECT_TRUE(flat.flat());
  EXPECT_EQ(flat.sem_kernel_name(), "virtual");

  SemSimMcOptions opt{0.6, 0.05};
  for (const NodePair& p : MakePairs(d.graph.num_nodes(), 100)) {
    ASSERT_EQ(flat.Query(p.first, p.second, opt),
              generic.Query(p.first, p.second, opt));
  }
}

// ---------------------------------------------------------------------------
// Layer 3: engine-level bit-equality — a kFlat BatchQueryEngine and a
// kGeneric one return identical batches at 1, 2 and 8 threads, across
// repeated rounds (cache history must not matter).
// ---------------------------------------------------------------------------

TEST(FlatKernelEngine, BatchesBitIdenticalAcrossKernelsAndThreads) {
  for (const Dataset& d : {Figure1(), Aminer()}) {
    LinMeasure lin(&d.context);
    WalkIndex index = WalkIndex::Build(d.graph,
                                       WalkIndexOptions{40, 8, 13, false});
    std::vector<NodePair> pairs = MakePairs(d.graph.num_nodes(), 300);
    std::vector<NodeId> sources;
    for (NodeId u = 0; u < d.graph.num_nodes();
         u += 1 + d.graph.num_nodes() / 6) {
      sources.push_back(u);
    }

    BatchQueryEngineOptions generic_opt;
    generic_opt.num_threads = 1;
    generic_opt.query.kernel = QueryKernel::kGeneric;
    BatchQueryEngine reference = testutil::Unwrap(
        BatchQueryEngine::Create(&d.graph, &lin, &index, generic_opt));
    EXPECT_EQ(reference.kernel_name(), "generic");
    EXPECT_EQ(reference.transition_table(), nullptr);
    std::vector<double> want = reference.QueryBatch(pairs).values;
    auto want_sources = reference.SingleSourceBatch(sources).values;
    auto want_topk = reference.TopKBatch(sources, 10).values;

    for (int threads : {1, 2, 8}) {
      BatchQueryEngineOptions opt;
      opt.num_threads = threads;
      opt.query.kernel = QueryKernel::kFlat;
      BatchQueryEngine engine = testutil::Unwrap(
          BatchQueryEngine::Create(&d.graph, &lin, &index, opt));
      EXPECT_EQ(engine.kernel_name(), "flat+flat-lin");
      ASSERT_NE(engine.transition_table(), nullptr);
      ASSERT_NE(engine.flat_semantic_table(), nullptr);
      // Devirtualized semantics: no memoizing wrapper is built.
      EXPECT_EQ(engine.cached_semantic(), nullptr);

      for (int round = 0; round < 2; ++round) {
        std::vector<double> got = engine.QueryBatch(pairs).values;
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], want[i])
              << "pair " << i << " threads " << threads << " round "
              << round;
        }
      }
      auto got_sources = engine.SingleSourceBatch(sources).values;
      ASSERT_EQ(got_sources.size(), want_sources.size());
      for (size_t i = 0; i < got_sources.size(); ++i) {
        for (size_t v = 0; v < got_sources[i].size(); ++v) {
          ASSERT_EQ(got_sources[i][v], want_sources[i][v]);
        }
      }
      auto got_topk = engine.TopKBatch(sources, 10).values;
      for (size_t i = 0; i < got_topk.size(); ++i) {
        ASSERT_EQ(got_topk[i].size(), want_topk[i].size());
        for (size_t j = 0; j < got_topk[i].size(); ++j) {
          ASSERT_EQ(got_topk[i][j].node, want_topk[i][j].node);
          ASSERT_EQ(got_topk[i][j].score, want_topk[i][j].score);
        }
      }
    }
  }
}

TEST(FlatKernelEngine, ConstantMeasureFallsBackToVirtual) {
  Dataset d = Figure1();
  ConstantMeasure constant;
  WalkIndex index = WalkIndex::Build(d.graph,
                                     WalkIndexOptions{30, 8, 13, false});
  BatchQueryEngineOptions flat_opt;
  flat_opt.num_threads = 2;
  flat_opt.query.kernel = QueryKernel::kFlat;
  BatchQueryEngine flat_engine = testutil::Unwrap(
      BatchQueryEngine::Create(&d.graph, &constant, &index, flat_opt));
  EXPECT_EQ(flat_engine.kernel_name(), "flat+virtual");
  EXPECT_EQ(flat_engine.flat_semantic_table(), nullptr);
  ASSERT_NE(flat_engine.transition_table(), nullptr);

  BatchQueryEngineOptions generic_opt;
  generic_opt.num_threads = 2;
  generic_opt.query.kernel = QueryKernel::kGeneric;
  BatchQueryEngine generic_engine = testutil::Unwrap(
      BatchQueryEngine::Create(&d.graph, &constant, &index, generic_opt));

  std::vector<NodePair> pairs = MakePairs(d.graph.num_nodes(), 120);
  std::vector<double> got = flat_engine.QueryBatch(pairs).values;
  std::vector<double> want = generic_engine.QueryBatch(pairs).values;
  for (size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], want[i]);
}

}  // namespace
}  // namespace semsim

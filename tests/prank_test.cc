#include "baselines/prank.h"

#include <gtest/gtest.h>

#include "core/iterative.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeJehWidomWorld;
using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(PRank, LambdaOneEqualsSimRank) {
  auto w = MakeJehWidomWorld();
  PRankOptions opt;
  opt.decay = 0.8;
  opt.lambda = 1.0;
  opt.iterations = 20;
  ScoreMatrix prank = Unwrap(ComputePRank(w.graph, opt));
  ScoreMatrix simrank = Unwrap(ComputeSimRank(w.graph, 0.8, 20, nullptr));
  EXPECT_LT(prank.MaxAbsDifference(simrank), 1e-12);
}

TEST(PRank, BasicProperties) {
  auto w = MakeSmallWorld();
  PRankOptions opt;
  ScoreMatrix s = Unwrap(ComputePRank(w.graph, opt));
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(s.at(u, u), 1.0);
    for (NodeId v = 0; v < u; ++v) {
      EXPECT_DOUBLE_EQ(s.at(u, v), s.at(v, u));
      EXPECT_GE(s.at(u, v), 0.0);
      EXPECT_LE(s.at(u, v), 1.0);
    }
  }
}

TEST(PRank, OutNeighborsContributeWhenInSideIsEmpty) {
  // x,y have no in-neighbors but share the out-neighbor z: SimRank gives
  // 0; P-Rank with lambda < 1 must score them > 0.
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");
  NodeId y = b.AddNode("y", "t");
  NodeId z = b.AddNode("z", "t");
  ASSERT_TRUE(b.AddEdge(x, z, "e", 1).ok());
  ASSERT_TRUE(b.AddEdge(y, z, "e", 1).ok());
  Hin g = Unwrap(std::move(b).Build());
  ScoreMatrix simrank = Unwrap(ComputeSimRank(g, 0.6, 5, nullptr));
  EXPECT_DOUBLE_EQ(simrank.at(x, y), 0.0);
  PRankOptions opt;
  opt.lambda = 0.5;
  ScoreMatrix prank = Unwrap(ComputePRank(g, opt));
  // First iteration: (1-λ)·c·s(z,z) = 0.5·0.6 = 0.3.
  EXPECT_NEAR(prank.at(x, y), 0.3, 1e-12);
}

TEST(PRank, ValidatesOptions) {
  auto w = MakeSmallWorld();
  PRankOptions opt;
  opt.decay = 1.0;
  EXPECT_FALSE(ComputePRank(w.graph, opt).ok());
  opt.decay = 0.6;
  opt.lambda = 1.5;
  EXPECT_FALSE(ComputePRank(w.graph, opt).ok());
  opt.lambda = 0.5;
  opt.iterations = -1;
  EXPECT_FALSE(ComputePRank(w.graph, opt).ok());
}

}  // namespace
}  // namespace semsim

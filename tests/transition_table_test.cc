#include "graph/transition_table.h"

#include <gtest/gtest.h>

#include "datasets/aminer_gen.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

// Every group must reproduce Hin::InEdgeInfo bit-for-bit, and the
// precomputed quotients must equal the divisions the generic query path
// performs — exact EXPECT_EQ on doubles, no tolerance.
void CheckAgainstGraph(const Hin& g, const TransitionTable& t) {
  ASSERT_EQ(t.num_nodes(), g.num_nodes());
  size_t groups_seen = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto groups = t.InGroups(v);
    groups_seen += groups.size();
    NodeId prev = kInvalidNode;
    for (const TransitionTable::Group& grp : groups) {
      if (prev != kInvalidNode) {
        EXPECT_LT(prev, grp.from) << "groups must mirror the sorted CSR";
      }
      prev = grp.from;
      Hin::EdgeInfo info = g.InEdgeInfo(v, grp.from);
      EXPECT_EQ(grp.multiplicity, info.multiplicity);
      EXPECT_EQ(grp.total_weight, info.total_weight);
      EXPECT_EQ(grp.q_uniform,
                static_cast<double>(info.multiplicity) /
                    static_cast<double>(g.InDegree(v)));
      EXPECT_EQ(grp.q_weighted, info.total_weight / g.TotalInWeight(v));
      // The O(1) map agrees with the per-node span.
      const TransitionTable::Group* found = t.FindInGroup(v, grp.from);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found, &grp);
    }
    if (g.InDegree(v) == 0) {
      EXPECT_TRUE(groups.empty());
      EXPECT_EQ(t.inv_in_degree(v), 0.0);
      EXPECT_EQ(t.inv_total_in_weight(v), 0.0);
    } else {
      EXPECT_EQ(t.inv_in_degree(v),
                1.0 / static_cast<double>(g.InDegree(v)));
      EXPECT_EQ(t.inv_total_in_weight(v), 1.0 / g.TotalInWeight(v));
    }
  }
  EXPECT_EQ(t.num_groups(), groups_seen);
}

TEST(TransitionTable, MatchesInEdgeInfoOnSmallWorld) {
  auto w = MakeSmallWorld();
  TransitionTable table = TransitionTable::Build(w.graph);
  CheckAgainstGraph(w.graph, table);
}

TEST(TransitionTable, MatchesInEdgeInfoOnGeneratedHin) {
  AminerOptions opt;
  opt.num_authors = 150;
  opt.seed = 5;
  Dataset dataset = Unwrap(GenerateAminer(opt));
  TransitionTable table = TransitionTable::Build(dataset.graph);
  CheckAgainstGraph(dataset.graph, table);
}

TEST(TransitionTable, CollapsesParallelEdges) {
  HinBuilder b;
  NodeId a = b.AddNode("a", "t");
  NodeId c = b.AddNode("c", "t");
  NodeId d = b.AddNode("d", "t");
  // Three parallel edges a->c with distinct labels/weights, one d->c.
  ASSERT_TRUE(b.AddEdge(a, c, "e1", 1.0).ok());
  ASSERT_TRUE(b.AddEdge(a, c, "e2", 2.5).ok());
  ASSERT_TRUE(b.AddEdge(a, c, "e3", 0.5).ok());
  ASSERT_TRUE(b.AddEdge(d, c, "e1", 4.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  TransitionTable table = TransitionTable::Build(g);

  const TransitionTable::Group* ac = table.FindInGroup(c, a);
  ASSERT_NE(ac, nullptr);
  EXPECT_EQ(ac->multiplicity, 3u);
  EXPECT_EQ(ac->total_weight, g.InEdgeInfo(c, a).total_weight);
  EXPECT_EQ(ac->q_uniform, 3.0 / static_cast<double>(g.InDegree(c)));
  const TransitionTable::Group* dc = table.FindInGroup(c, d);
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->multiplicity, 1u);
  EXPECT_EQ(table.InGroups(c).size(), 2u);
}

TEST(TransitionTable, FindInGroupReturnsNullForMissingEdges) {
  auto w = MakeSmallWorld();
  TransitionTable table = TransitionTable::Build(w.graph);
  // Self-loops don't exist in the small world.
  EXPECT_EQ(table.FindInGroup(w.a0, w.a0), nullptr);
  // A pair with no edge in this direction.
  bool has_edge = false;
  for (const Neighbor& nb : w.graph.InNeighbors(w.a0)) {
    if (nb.node == w.b1) has_edge = true;
  }
  if (!has_edge) EXPECT_EQ(table.FindInGroup(w.a0, w.b1), nullptr);
}

TEST(TransitionTable, IsolatedNodesHaveNoGroups) {
  HinBuilder b;
  NodeId x = b.AddNode("x", "t");  // in-isolated
  NodeId y = b.AddNode("y", "t");
  ASSERT_TRUE(b.AddEdge(x, y, "e", 2.0).ok());
  Hin g = Unwrap(std::move(b).Build());
  TransitionTable table = TransitionTable::Build(g);
  EXPECT_TRUE(table.InGroups(x).empty());
  EXPECT_EQ(table.FindInGroup(x, y), nullptr);
  EXPECT_EQ(table.inv_in_degree(x), 0.0);
  EXPECT_EQ(table.inv_total_in_weight(x), 0.0);
  ASSERT_EQ(table.InGroups(y).size(), 1u);
  EXPECT_EQ(table.InGroups(y)[0].from, x);
  EXPECT_GT(table.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace semsim

#include "eval/tasks.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace semsim {
namespace {

TEST(EvaluateRelatedness, PerfectMeasureGetsRNearOne) {
  std::vector<RelatednessPair> bench = {
      {0, 1, 0.9}, {0, 2, 0.5}, {1, 2, 0.1}, {0, 3, 0.7}, {2, 3, 0.3}};
  NamedSimilarity oracle{"oracle", [&](NodeId a, NodeId b) {
                           for (const auto& p : bench) {
                             if ((p.a == a && p.b == b) ||
                                 (p.a == b && p.b == a)) {
                               return p.human_score;
                             }
                           }
                           return 0.0;
                         }};
  RelatednessResult r = EvaluateRelatedness(bench, oracle);
  EXPECT_NEAR(r.pearson_r, 1.0, 1e-9);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(EvaluateRelatedness, AntiCorrelatedMeasure) {
  std::vector<RelatednessPair> bench = {
      {0, 1, 0.9}, {0, 2, 0.5}, {1, 2, 0.1}, {0, 3, 0.7}};
  NamedSimilarity inverse{"inv", [&](NodeId a, NodeId b) {
                            for (const auto& p : bench) {
                              if (p.a == a && p.b == b) {
                                return 1.0 - p.human_score;
                              }
                            }
                            return 0.5;
                          }};
  RelatednessResult r = EvaluateRelatedness(bench, inverse);
  EXPECT_NEAR(r.pearson_r, -1.0, 1e-9);
}

TEST(TopKContains, ExactRankSemantics) {
  // Scores from node 0: node 1 -> 0.9, node 2 -> 0.8, node 3 -> 0.7.
  NamedSimilarity m{"m", [](NodeId, NodeId v) {
                      return v == 1 ? 0.9 : (v == 2 ? 0.8 : 0.7);
                    }};
  std::vector<NodeId> candidates = {1, 2, 3};
  EXPECT_TRUE(TopKContains(m, 0, 1, candidates, 1));
  EXPECT_FALSE(TopKContains(m, 0, 2, candidates, 1));
  EXPECT_TRUE(TopKContains(m, 0, 2, candidates, 2));
  EXPECT_FALSE(TopKContains(m, 0, 3, candidates, 2));
  EXPECT_TRUE(TopKContains(m, 0, 3, candidates, 3));
}

TEST(TopKContains, TiesBrokenByNodeId) {
  NamedSimilarity m{"m", [](NodeId, NodeId) { return 0.5; }};
  std::vector<NodeId> candidates = {1, 2, 3};
  // All tied: node 1 wins the tie-break, node 3 loses it.
  EXPECT_TRUE(TopKContains(m, 0, 1, candidates, 1));
  EXPECT_FALSE(TopKContains(m, 0, 3, candidates, 1));
}

TEST(LinkPrediction, PerfectAndUselessMeasures) {
  std::vector<std::pair<NodeId, NodeId>> heldout = {{0, 5}, {1, 6}, {2, 7}};
  std::vector<NodeId> candidates = {3, 4, 5, 6, 7, 8, 9};
  // A measure that knows the answer.
  NamedSimilarity oracle{"oracle", [&](NodeId q, NodeId v) {
                           for (const auto& [a, b] : heldout) {
                             if (a == q && b == v) return 1.0;
                           }
                           return 0.0;
                         }};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(
      LinkPredictionHitRate(oracle, heldout, candidates, 1, 100, rng), 1.0);
  // A constant measure ranks by node id; target 5 is the 3rd candidate.
  NamedSimilarity constant{"const", [](NodeId, NodeId) { return 0.5; }};
  EXPECT_DOUBLE_EQ(
      LinkPredictionHitRate(constant, heldout, candidates, 7, 100, rng), 1.0);
  EXPECT_LT(LinkPredictionHitRate(constant, heldout, candidates, 1, 100, rng),
            1.0);
}

TEST(LinkPrediction, SubsamplesQueries) {
  std::vector<std::pair<NodeId, NodeId>> heldout;
  for (NodeId i = 0; i < 50; ++i) heldout.push_back({i, i + 50});
  std::vector<NodeId> candidates;
  for (NodeId i = 50; i < 100; ++i) candidates.push_back(i);
  NamedSimilarity oracle{"oracle", [](NodeId q, NodeId v) {
                           return v == q + 50 ? 1.0 : 0.0;
                         }};
  Rng rng(2);
  EXPECT_DOUBLE_EQ(
      LinkPredictionHitRate(oracle, heldout, candidates, 1, 10, rng), 1.0);
}

TEST(EntityResolution, PrecisionAtK) {
  std::vector<std::pair<NodeId, NodeId>> dups = {{0, 10}, {1, 11}};
  std::vector<NodeId> candidates = {5, 6, 7, 10, 11};
  NamedSimilarity half{"half", [](NodeId q, NodeId v) {
                         // Finds 10 for query 0; misses 11 for query 1.
                         if (q == 0 && v == 10) return 1.0;
                         if (q == 1 && v == 5) return 1.0;
                         return 0.1;
                       }};
  EXPECT_DOUBLE_EQ(EntityResolutionPrecision(half, dups, candidates, 1), 0.5);
  // For query 1, node 11 is tied at 0.1 with {6,7,10} (which win the
  // id tie-break) and beaten by 5, so it needs k=5 to surface.
  EXPECT_DOUBLE_EQ(EntityResolutionPrecision(half, dups, candidates, 4), 0.5);
  EXPECT_DOUBLE_EQ(EntityResolutionPrecision(half, dups, candidates, 5), 1.0);
}

}  // namespace
}  // namespace semsim

#include "common/mapped_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return path;
}

TEST(MappedFile, OpenExposesFileBytes) {
  std::string path = WriteTemp("semsim_mf_basic.bin", "hello mapping");
  MappedFile file = Unwrap(MappedFile::Open(path));
  ASSERT_EQ(file.size(), 13u);
  EXPECT_EQ(std::memcmp(file.data(), "hello mapping", 13), 0);
  EXPECT_EQ(file.path(), path);
  std::remove(path.c_str());
}

TEST(MappedFile, BufferedFallbackExposesSameBytes) {
  std::string path = WriteTemp("semsim_mf_buf.bin", "fallback bytes");
  MappedFile file = Unwrap(MappedFile::OpenBuffered(path));
  ASSERT_EQ(file.size(), 14u);
  EXPECT_EQ(std::memcmp(file.data(), "fallback bytes", 14), 0);
  EXPECT_FALSE(file.mapped());
  EXPECT_GE(file.OwnedBytes(), file.size());
  std::remove(path.c_str());
}

TEST(MappedFile, MmapFailureFallsBackToIdenticalBytes) {
  // Open() with the mmap seam armed must silently take the buffered
  // path and expose byte-identical content — the transparency promise
  // callers (WalkIndex::Map among them) rely on.
#if !SEMSIM_FAILPOINTS
  GTEST_SKIP() << "failpoint sites compiled out";
#else
  std::string content(8192, '\0');
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<char>((i * 131 + 17) & 0xff);
  }
  std::string path = WriteTemp("semsim_mf_fp.bin", content);
  MappedFile plain = Unwrap(MappedFile::Open(path));
  ASSERT_TRUE(plain.mapped()) << "baseline Open should mmap on this host";

  FailPoints::Global().ArmError("mapped_file/mmap",
                                Status::IOError("injected mmap failure"));
  MappedFile fallback = Unwrap(MappedFile::Open(path));
  FailPoints::Global().DisarmAll();

  EXPECT_FALSE(fallback.mapped());
  EXPECT_GE(fallback.OwnedBytes(), fallback.size());
  ASSERT_EQ(fallback.size(), plain.size());
  EXPECT_EQ(std::memcmp(fallback.data(), plain.data(), plain.size()), 0)
      << "fallback must be byte-identical to the mapped view";
  std::remove(path.c_str());
#endif
}

TEST(MappedFile, ZeroByteFileOpens) {
  std::string path = WriteTemp("semsim_mf_empty.bin", "");
  MappedFile mapped = Unwrap(MappedFile::Open(path));
  EXPECT_EQ(mapped.size(), 0u);
  MappedFile buffered = Unwrap(MappedFile::OpenBuffered(path));
  EXPECT_EQ(buffered.size(), 0u);
  std::remove(path.c_str());
}

TEST(MappedFile, MissingFileIsIOError) {
  auto result = MappedFile::Open(::testing::TempDir() + "semsim_mf_none.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(MappedFile, MoveTransfersTheView) {
  std::string path = WriteTemp("semsim_mf_move.bin", "move me");
  MappedFile a = Unwrap(MappedFile::Open(path));
  MappedFile b = std::move(a);
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(std::memcmp(b.data(), "move me", 7), 0);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): reset state
  std::remove(path.c_str());
}

TEST(MappedFile, MovedBufferedFallbackRebindsItsPointer) {
  // The fallback's data() points into its own heap buffer; after a move
  // the view must follow the buffer, not dangle into the source.
  std::string path = WriteTemp("semsim_mf_move_buf.bin", "rebind");
  MappedFile a = Unwrap(MappedFile::OpenBuffered(path));
  MappedFile b = std::move(a);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(std::memcmp(b.data(), "rebind", 6), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semsim

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace semsim {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader, just enough to round-trip MetricsSnapshot::ToJson
// (objects, arrays, numbers, strings, null). Keeps the exporter test honest:
// we parse the emitted document instead of substring-matching it.

struct JsonValue {
  enum Kind { kNull, kNumber, kString, kArray, kObject } kind = kNull;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON garbage";
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue ParseValue() {
    char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 'n') {
      pos_ += 4;  // null
      return JsonValue{};
    }
    return ParseNumber();
  }
  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      v.object[key.str] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }
  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }
  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::kString;
    Expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      v.str += text_[pos_++];
    }
    Expect('"');
    return v;
  }
  JsonValue ParseNumber() {
    JsonValue v;
    v.kind = JsonValue::kNumber;
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number at offset " << start;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Parses a Prometheus text exposition into name(+labels) -> value,
// skipping comment lines.
std::map<std::string, double> ParsePrometheus(const std::string& text) {
  std::map<std::string, double> values;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "bad line: " << line;
    std::string key = line.substr(0, space);
    EXPECT_FALSE(values.count(key)) << "duplicate series: " << key;
    values[key] = std::stod(line.substr(space + 1));
  }
  return values;
}

// ---------------------------------------------------------------------------

TEST(Counter, AggregatesAcrossThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_counter_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter->Add(1);
      counter->Add(2);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(), kThreads * (kAddsPerThread + 2));
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(Gauge, SetAndDeltaStyles) {
  MetricsRegistry registry;
  Gauge* level = registry.GetGauge("test_level");
  level->Set(42.5);
  EXPECT_DOUBLE_EQ(level->Value(), 42.5);
  level->Set(7.0);  // last writer wins
  EXPECT_DOUBLE_EQ(level->Value(), 7.0);

  Gauge* depth = registry.GetGauge("test_depth");
  depth->Add(5);
  depth->Sub(2);
  EXPECT_DOUBLE_EQ(depth->Value(), 3.0);
  depth->Reset();
  EXPECT_DOUBLE_EQ(depth->Value(), 0.0);
}

TEST(Gauge, DeltaExactUnderConcurrency) {
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("test_concurrent_depth");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        depth->Add(1);
        depth->Sub(1);
      }
      depth->Add(1);  // net +1 per thread
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(depth->Value(), kThreads);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  const double bounds[] = {1.0, 2.0, 4.0};
  Histogram h{std::span<const double>(bounds)};
  h.Observe(0.5);   // <= 1      -> bucket 0
  h.Observe(1.0);   // == bound  -> bucket 0 (le semantics, inclusive)
  h.Observe(1.5);   //           -> bucket 1
  h.Observe(2.0);   // == bound  -> bucket 1
  h.Observe(4.0);   // == bound  -> bucket 2
  h.Observe(4.001); // overflow  -> bucket 3
  h.Observe(1e12);  // overflow  -> bucket 3
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 2, 1, 2}));
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.001 + 1e12);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(Histogram, ExponentialBucketsAndDefaults) {
  std::vector<double> b = Histogram::ExponentialBuckets(1e-6, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1e-6);
  EXPECT_DOUBLE_EQ(b[1], 1e-5);
  EXPECT_DOUBLE_EQ(b[2], 1e-4);
  EXPECT_DOUBLE_EQ(b[3], 1e-3);

  std::span<const double> defaults = Histogram::DefaultLatencyBounds();
  ASSERT_FALSE(defaults.empty());
  EXPECT_DOUBLE_EQ(defaults.front(), 1e-6);
  for (size_t i = 1; i < defaults.size(); ++i) {
    EXPECT_LT(defaults[i - 1], defaults[i]);  // strictly increasing
  }
  EXPECT_GT(defaults.back(), 10.0);  // ladder reaches past 10 s
}

TEST(Histogram, ShardAggregationUnderConcurrentObserve) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_concurrent_seconds");
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h->Observe(1e-6 * (t + 1));
      }
    });
  }
  // Concurrent snapshots must be race-free (run under TSan) and coherent:
  // every observation lands in exactly one bucket.
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    const HistogramSnapshot& hs = snap.histograms.at("test_concurrent_seconds");
    uint64_t bucket_total = 0;
    for (uint64_t c : hs.counts) bucket_total += c;
    EXPECT_EQ(bucket_total, hs.count);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kObsPerThread);
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += 1e-6 * (t + 1);
  EXPECT_NEAR(h->Sum(), expected_sum * kObsPerThread, 1e-9);
}

TEST(Registry, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("shared_total");
  Counter* b = registry.GetCounter("shared_total");
  EXPECT_EQ(a, b);  // same name, same aggregate
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);

  Histogram* h1 = registry.GetHistogram("shared_seconds");
  Histogram* h2 = registry.GetHistogram("shared_seconds");
  EXPECT_EQ(h1, h2);

  registry.Reset();
  EXPECT_EQ(a->Value(), 0u);  // handles survive Reset
  a->Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("shared_total"), 1u);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(TraceSpanTest, PublishesCallCountAndLatency) {
  MetricsRegistry registry;
  TraceSpan::Site site = TraceSpan::Resolve(registry, "test_span");
  for (int i = 0; i < 3; ++i) {
    TraceSpan span(site);
  }
  EXPECT_EQ(registry.GetCounter("test_span_total")->Value(), 3u);
  Histogram* seconds = registry.GetHistogram("test_span_seconds");
  EXPECT_EQ(seconds->Count(), 3u);
  EXPECT_GE(seconds->Sum(), 0.0);
}

TEST(ScopedTimerTest, ReportsToHistogramAndOutParam) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_timer_seconds");
  double seconds = -1;
  {
    ScopedTimer timer(h, &seconds);
  }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(seconds, 0.0);
  EXPECT_DOUBLE_EQ(h->Sum(), seconds);
}

// Builds a snapshot with one of everything, exercised by the exporter
// round-trip tests below.
MetricsSnapshot MakeSampleSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("semsim_sample_events_total")->Add(12345);
  registry.GetGauge("semsim_sample_depth")->Set(2.5);
  const double bounds[] = {0.001, 0.01, 0.1};
  Histogram* h = registry.GetHistogram("semsim_sample_seconds",
                                       std::span<const double>(bounds));
  h->Observe(0.0005);  // bucket 0
  h->Observe(0.005);   // bucket 1
  h->Observe(0.005);   // bucket 1
  h->Observe(0.05);    // bucket 2
  h->Observe(5.0);     // overflow
  return registry.Snapshot();
}

TEST(Exporters, JsonRoundTripsEveryValue) {
  MetricsSnapshot snap = MakeSampleSnapshot();
  JsonValue doc = JsonReader(snap.ToJson()).Parse();

  EXPECT_EQ(doc.at("counters").at("semsim_sample_events_total").number, 12345);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("semsim_sample_depth").number, 2.5);

  const JsonValue& h = doc.at("histograms").at("semsim_sample_seconds");
  const HistogramSnapshot& hs = snap.histograms.at("semsim_sample_seconds");
  ASSERT_EQ(h.at("bounds").array.size(), hs.bounds.size());
  for (size_t i = 0; i < hs.bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(h.at("bounds").array[i].number, hs.bounds[i]);
  }
  ASSERT_EQ(h.at("counts").array.size(), hs.counts.size());
  for (size_t i = 0; i < hs.counts.size(); ++i) {
    EXPECT_EQ(h.at("counts").array[i].number, hs.counts[i]);
  }
  EXPECT_EQ(h.at("count").number, 5);
  EXPECT_DOUBLE_EQ(h.at("sum").number, hs.sum);
}

TEST(Exporters, PrometheusAgreesWithJsonOnEveryValue) {
  MetricsSnapshot snap = MakeSampleSnapshot();
  std::map<std::string, double> prom = ParsePrometheus(snap.ToPrometheus());

  for (const auto& [name, value] : snap.counters) {
    EXPECT_DOUBLE_EQ(prom.at(name), static_cast<double>(value)) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_DOUBLE_EQ(prom.at(name), value) << name;
  }
  for (const auto& [name, hs] : snap.histograms) {
    // Prometheus buckets are cumulative; the +Inf bucket equals _count.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hs.bounds.size(); ++i) {
      cumulative += hs.counts[i];
      char bound[40];
      std::snprintf(bound, sizeof(bound), "%.17g", hs.bounds[i]);
      std::string series =
          name + "_bucket{le=\"" + bound + "\"}";
      EXPECT_DOUBLE_EQ(prom.at(series), static_cast<double>(cumulative))
          << series;
    }
    EXPECT_DOUBLE_EQ(prom.at(name + "_bucket{le=\"+Inf\"}"),
                     static_cast<double>(hs.count));
    EXPECT_DOUBLE_EQ(prom.at(name + "_count"), static_cast<double>(hs.count));
    EXPECT_DOUBLE_EQ(prom.at(name + "_sum"), hs.sum);
  }
}

TEST(Exporters, PromPathDerivation) {
  EXPECT_EQ(MetricsPromPath("snap.json"), "snap.prom");
  EXPECT_EQ(MetricsPromPath("dir/metrics.json"), "dir/metrics.prom");
  EXPECT_EQ(MetricsPromPath("snap"), "snap.prom");
}

TEST(Exporters, WriteMetricsFilesRoundTrip) {
  MetricsSnapshot snap = MakeSampleSnapshot();
  std::string json_path =
      ::testing::TempDir() + "/semsim_metrics_test_snap.json";
  Status status = WriteMetricsFiles(snap, json_path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  EXPECT_EQ(slurp(json_path), snap.ToJson());
  EXPECT_EQ(slurp(MetricsPromPath(json_path)), snap.ToPrometheus());
  std::remove(json_path.c_str());
  std::remove(MetricsPromPath(json_path).c_str());
}

TEST(Exporters, SnapshotWhileWritersRunStaysCoherent) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("writer_total");
  Histogram* h = registry.GetHistogram("writer_seconds");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        c->Add(1);
        h->Observe(1e-5);
      }
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    uint64_t now = snap.counters.at("writer_total");
    EXPECT_GE(now, last);  // counters are monotone across snapshots
    last = now;
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), 80000u);
  EXPECT_EQ(h->Count(), 80000u);
}

}  // namespace
}  // namespace semsim

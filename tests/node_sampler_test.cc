#include "graph/node_sampler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/walk_index.h"
#include "testing/random_hin.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

// A directed graph with one skewed-weight node, one uniform-weight
// node, one degree-1 node, and one dangling node (no in-neighbors):
//   hub <- {s0 w1, s1 w3, s2 w6}   (skewed: alias table materialized)
//   flat <- {s0 w2, s1 w2}         (uniform: NextIndex fast path)
//   s2 <- {hub w5}                 (degree 1: fast path)
//   s0, s1, lone: no in-edges.
struct WeightedWorld {
  Hin graph;
  NodeId hub, flat, s0, s1, s2, lone;
};

WeightedWorld MakeWeightedWorld() {
  HinBuilder b;
  WeightedWorld w;
  w.hub = b.AddNode("hub", "T");
  w.flat = b.AddNode("flat", "T");
  w.s0 = b.AddNode("s0", "T");
  w.s1 = b.AddNode("s1", "T");
  w.s2 = b.AddNode("s2", "T");
  w.lone = b.AddNode("lone", "T");
  auto e = [&](NodeId s, NodeId d, double weight) {
    SEMSIM_CHECK(b.AddEdge(s, d, "r", weight).ok());
  };
  e(w.s0, w.hub, 1.0);
  e(w.s1, w.hub, 3.0);
  e(w.s2, w.hub, 6.0);
  e(w.s0, w.flat, 2.0);
  e(w.s1, w.flat, 2.0);
  e(w.hub, w.s2, 5.0);
  w.graph = Unwrap(std::move(b).Build());
  return w;
}

testing::RandomHinOptions HeavyTailOptions(uint64_t seed) {
  testing::RandomHinOptions opt;
  opt.seed = seed;
  opt.num_nodes = 200;
  opt.avg_out_degree = 6.0;
  opt.degree_skew = 1.0;
  opt.heavy_tail_weights = true;
  opt.min_weight = 0.05;
  opt.max_weight = 20.0;
  return opt;
}

TEST(NodeSamplerIndex, MatchesWeightDistribution) {
  auto w = MakeWeightedWorld();
  NodeSamplerIndex index =
      NodeSamplerIndex::Build(w.graph, SampleDirection::kIn);
  ASSERT_EQ(index.num_nodes(), w.graph.num_nodes());
  EXPECT_TRUE(index.HasTable(w.hub));
  ASSERT_EQ(index.degree(w.hub), 3u);

  auto in = w.graph.InNeighbors(w.hub);
  std::vector<int> counts(3, 0);
  Rng rng(31);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    size_t pick = index.Sample(w.hub, rng);
    ASSERT_LT(pick, in.size());
    ++counts[pick];
  }
  // Neighbor order inside InNeighbors is the graph's; match empirical
  // frequencies to the stored weights rather than assumed positions.
  double total_w = 0;
  for (const Neighbor& nb : in) total_w += nb.weight;
  for (size_t i = 0; i < in.size(); ++i) {
    double expected = kSamples * in[i].weight / total_w;
    EXPECT_NEAR(counts[i], expected, kSamples * 0.01)
        << "neighbor position " << i;
  }
}

TEST(NodeSamplerIndex, UniformFastPathMatchesNextIndexStream) {
  auto w = MakeWeightedWorld();
  NodeSamplerIndex index =
      NodeSamplerIndex::Build(w.graph, SampleDirection::kIn);
  // flat has two equal-weight in-neighbors, s2 exactly one: no tables.
  EXPECT_FALSE(index.HasTable(w.flat));
  EXPECT_FALSE(index.HasTable(w.s2));
  // The fast path consumes exactly one NextIndex(degree) per draw — the
  // same RNG stream as an unweighted step.
  Rng a(37), b(37);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(index.Sample(w.flat, a), b.NextIndex(2));
    EXPECT_EQ(index.Sample(w.s2, a), b.NextIndex(1));
  }
}

TEST(NodeSamplerIndex, CountsUniformNodesAndTableBytes) {
  auto w = MakeWeightedWorld();
  NodeSamplerIndex index =
      NodeSamplerIndex::Build(w.graph, SampleDirection::kIn);
  // flat + s2 take the fast path; hub is the only materialized table;
  // s0/s1/lone have no in-neighbors and count as neither.
  EXPECT_EQ(index.uniform_nodes(), 2u);
  size_t expected =
      (w.graph.num_nodes() + 1) * sizeof(uint64_t) +   // offsets
      w.graph.num_nodes() * sizeof(uint32_t) +         // degrees
      3 * (sizeof(double) + sizeof(uint32_t));         // hub's 3 slots
  EXPECT_EQ(index.TableBytes(), expected);
}

TEST(NodeSamplerIndex, OutDirection) {
  auto w = MakeWeightedWorld();
  NodeSamplerIndex index =
      NodeSamplerIndex::Build(w.graph, SampleDirection::kOut);
  EXPECT_EQ(index.direction(), SampleDirection::kOut);
  // s0 points at hub (w1) and flat (w2): a real 2-slot table.
  EXPECT_TRUE(index.HasTable(w.s0));
  ASSERT_EQ(index.degree(w.s0), 2u);
  auto out = w.graph.OutNeighbors(w.s0);
  std::vector<int> counts(2, 0);
  Rng rng(41);
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) ++counts[index.Sample(w.s0, rng)];
  double total_w = out[0].weight + out[1].weight;
  EXPECT_NEAR(counts[0], kSamples * out[0].weight / total_w, 1500);
  EXPECT_NEAR(counts[1], kSamples * out[1].weight / total_w, 1500);
}

TEST(NodeSamplerIndex, FingerprintPinnedAcrossThreadCounts) {
  Hin graph = Unwrap(testing::GenerateRandomHin(HeavyTailOptions(51)));
  NodeSamplerIndex serial =
      NodeSamplerIndex::Build(graph, SampleDirection::kIn);
  ASSERT_GT(serial.TableBytes(), 0u);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    NodeSamplerIndex parallel =
        NodeSamplerIndex::Build(graph, SampleDirection::kIn, &pool);
    EXPECT_EQ(parallel.Fingerprint(), serial.Fingerprint())
        << threads << " threads";
  }
}

TEST(NodeSamplerIndex, BuildRecordsMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  uint64_t builds_before =
      registry.GetCounter("semsim_node_sampler_build_total")->Value();
  double bytes_before =
      registry.GetGauge("semsim_node_sampler_table_bytes")->Value();
  uint64_t uniform_before =
      registry
          .GetCounter(
              "semsim_node_sampler_alias_fast_path_uniform_nodes_total")
          ->Value();

  auto w = MakeWeightedWorld();
  NodeSamplerIndex index =
      NodeSamplerIndex::Build(w.graph, SampleDirection::kIn);

  EXPECT_EQ(registry.GetCounter("semsim_node_sampler_build_total")->Value(),
            builds_before + 1);
  EXPECT_EQ(registry.GetGauge("semsim_node_sampler_table_bytes")->Value(),
            bytes_before + static_cast<double>(index.TableBytes()));
  EXPECT_EQ(
      registry
          .GetCounter(
              "semsim_node_sampler_alias_fast_path_uniform_nodes_total")
          ->Value(),
      uniform_before + index.uniform_nodes());
  EXPECT_GE(registry.GetHistogram("semsim_node_sampler_build_seconds")
                ->Count(),
            builds_before + 1);
}

// ---------------------------------------------------------------------------
// WalkIndex integration: the alias path keeps every determinism promise
// the scan path makes.
// ---------------------------------------------------------------------------

void ExpectSameWalks(const WalkIndex& a, const WalkIndex& b, size_t n) {
  size_t step_bytes = static_cast<size_t>(a.walk_length()) * sizeof(NodeId);
  for (NodeId v = 0; v < n; ++v) {
    for (int w = 0; w < a.num_walks(); ++w) {
      ASSERT_EQ(a.WalkLiveLength(v, w), b.WalkLiveLength(v, w))
          << "node " << v << " walk " << w;
      ASSERT_EQ(std::memcmp(a.WalkData(v, w), b.WalkData(v, w), step_bytes), 0)
          << "node " << v << " walk " << w;
    }
  }
}

TEST(NodeSamplerIndex, AliasWalkBuildBitIdenticalAcrossThreadCounts) {
  Hin graph = Unwrap(testing::GenerateRandomHin(HeavyTailOptions(53)));
  WalkIndexOptions opt;
  opt.num_walks = 20;
  opt.walk_length = 10;
  opt.seed = 99;
  opt.weighted = true;
  opt.sampler = SamplerKind::kAlias;
  opt.num_threads = 1;
  WalkIndex one = WalkIndex::Build(graph, opt);
  for (int threads : {2, 8}) {
    opt.num_threads = threads;
    WalkIndex many = WalkIndex::Build(graph, opt);
    ExpectSameWalks(one, many, graph.num_nodes());
  }
}

TEST(NodeSamplerIndex, SamplerChoiceInertForUniformProposal) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 25;
  opt.walk_length = 8;
  opt.seed = 7;
  opt.weighted = false;
  opt.sampler = SamplerKind::kAlias;
  WalkIndex alias = WalkIndex::Build(w.graph, opt);
  opt.sampler = SamplerKind::kScan;
  WalkIndex scan = WalkIndex::Build(w.graph, opt);
  ExpectSameWalks(alias, scan, w.graph.num_nodes());
}

TEST(NodeSamplerIndex, WeightedAliasAndScanAgreeStatistically) {
  // The two samplers consume the RNG stream differently, so their walks
  // differ bit-wise — but first-step frequencies must match the same
  // weight distribution. s2's only in-neighborhood is hub's weighted
  // row; compare the empirical first-step histogram from hub instead:
  // walks from hub step to s0/s1/s2 proportionally to 1/3/6.
  auto w = MakeWeightedWorld();
  WalkIndexOptions opt;
  opt.num_walks = 30000;
  opt.walk_length = 1;
  opt.seed = 61;
  opt.weighted = true;
  auto first_step_counts = [&](SamplerKind kind) {
    opt.sampler = kind;
    WalkIndex walks = WalkIndex::Build(w.graph, opt);
    std::vector<int> counts(w.graph.num_nodes(), 0);
    for (int i = 0; i < opt.num_walks; ++i) {
      EXPECT_EQ(walks.WalkLiveLength(w.hub, i), 1);
      ++counts[walks.WalkData(w.hub, i)[0]];
    }
    return counts;
  };
  std::vector<int> alias_counts, scan_counts;
  alias_counts = first_step_counts(SamplerKind::kAlias);
  scan_counts = first_step_counts(SamplerKind::kScan);
  for (NodeId v : {w.s0, w.s1, w.s2}) {
    double weight = v == w.s0 ? 1.0 : v == w.s1 ? 3.0 : 6.0;
    double expected = opt.num_walks * weight / 10.0;
    EXPECT_NEAR(alias_counts[v], expected, opt.num_walks * 0.012) << v;
    EXPECT_NEAR(scan_counts[v], expected, opt.num_walks * 0.012) << v;
  }
}

}  // namespace
}  // namespace semsim

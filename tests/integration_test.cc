// End-to-end pipeline tests: generated dataset → engine → evaluation
// harness, checking the qualitative relationships the paper's evaluation
// depends on (these are the invariants behind Tables 4-5 and Figure 5).
#include <gtest/gtest.h>

#include "baselines/similarity_fn.h"
#include "common/stats.h"
#include "core/iterative.h"
#include "core/semsim_engine.h"
#include "datasets/aminer_gen.h"
#include "datasets/amazon_gen.h"
#include "datasets/wikipedia_gen.h"
#include "eval/tasks.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

TEST(Integration, McEstimatorTracksIterativeOnGeneratedGraph) {
  AminerOptions opt;
  opt.num_authors = 120;
  opt.seed = 21;
  Dataset d = Unwrap(GenerateAminer(opt));
  LinMeasure lin(&d.context);

  ScoreMatrix exact = Unwrap(ComputeSemSim(d.graph, lin, 0.6, 12, nullptr));
  WalkIndexOptions wopt;
  wopt.num_walks = 400;
  wopt.walk_length = 15;
  wopt.seed = 77;
  WalkIndex index = WalkIndex::Build(d.graph, wopt);
  SemSimMcEstimator est(&d.graph, &lin, &index);
  SemSimMcOptions mc;
  mc.decay = 0.6;

  Rng rng(5);
  std::vector<double> approx, truth;
  for (int i = 0; i < 150; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(d.graph.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.NextIndex(d.graph.num_nodes()));
    if (u == v) continue;
    approx.push_back(est.Query(u, v, mc));
    truth.push_back(exact.at(u, v));
  }
  // Table 4's headline: approximated scores correlate strongly with the
  // iterative ground truth.
  EXPECT_GT(PearsonR(approx, truth), 0.85);
}

TEST(Integration, SemSimBeatsPureStructureOnRelatedness) {
  WikipediaOptions opt;
  opt.num_articles = 250;
  opt.relatedness_pairs = 120;
  opt.seed = 31;
  Dataset d = Unwrap(GenerateWikipedia(opt));
  LinMeasure lin(&d.context);

  ScoreMatrix semsim = Unwrap(ComputeSemSim(d.graph, lin, 0.6, 8, nullptr));
  ScoreMatrix simrank = Unwrap(ComputeSimRank(d.graph, 0.6, 8, nullptr));

  NamedSimilarity semsim_fn{
      "SemSim", [&](NodeId a, NodeId b) { return semsim.at(a, b); }};
  NamedSimilarity simrank_fn{
      "SimRank", [&](NodeId a, NodeId b) { return simrank.at(a, b); }};

  double r_semsim = EvaluateRelatedness(d.relatedness, semsim_fn).pearson_r;
  double r_simrank = EvaluateRelatedness(d.relatedness, simrank_fn).pearson_r;
  // Table 5's qualitative shape: the combined measure beats the purely
  // structural one on a semantics-heavy task.
  EXPECT_GT(r_semsim, r_simrank);
  EXPECT_GT(r_semsim, 0.3);
}

TEST(Integration, DuplicateAuthorsRankHighlyUnderSemSim) {
  AminerOptions opt;
  opt.num_authors = 150;
  opt.num_duplicates = 12;
  opt.seed = 41;
  Dataset d = Unwrap(GenerateAminer(opt));
  LinMeasure lin(&d.context);
  ScoreMatrix semsim = Unwrap(ComputeSemSim(d.graph, lin, 0.6, 8, nullptr));

  std::vector<NodeId> authors;
  for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
    if (d.graph.label_name(d.graph.node_label(v)) == "author") {
      authors.push_back(v);
    }
  }
  NamedSimilarity fn{"SemSim",
                     [&](NodeId a, NodeId b) { return semsim.at(a, b); }};
  double precision =
      EntityResolutionPrecision(fn, d.duplicate_pairs, authors, 20);
  // Clones share half the original's edges: they must be retrievable far
  // better than chance (20/150 ≈ 0.13).
  EXPECT_GT(precision, 0.4);
}

TEST(Integration, HeldOutCopurchasesPredictedAboveChance) {
  AmazonOptions opt;
  opt.num_items = 250;
  opt.heldout_fraction = 0.08;
  opt.seed = 51;
  Dataset d = Unwrap(GenerateAmazon(opt));
  LinMeasure lin(&d.context);
  ScoreMatrix semsim = Unwrap(ComputeSemSim(d.graph, lin, 0.6, 8, nullptr));

  std::vector<NodeId> items;
  for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
    if (d.graph.label_name(d.graph.node_label(v)) == "item") {
      items.push_back(v);
    }
  }
  NamedSimilarity fn{"SemSim",
                     [&](NodeId a, NodeId b) { return semsim.at(a, b); }};
  Rng rng(1);
  double hit20 = LinkPredictionHitRate(fn, d.heldout_edges, items, 20, 60, rng);
  double chance = 20.0 / static_cast<double>(items.size());
  EXPECT_GT(hit20, 2 * chance);
}

TEST(Integration, EngineTopKReturnsSemanticallyRelevantNodes) {
  AmazonOptions opt;
  opt.num_items = 200;
  opt.seed = 61;
  Dataset d = Unwrap(GenerateAmazon(opt));
  LinMeasure lin(&d.context);
  SemSimEngineOptions eopt;
  eopt.walks.num_walks = 150;
  eopt.walks.walk_length = 15;
  eopt.query.mc = {0.6, 0.05};
  SemSimEngine engine = Unwrap(SemSimEngine::Create(&d.graph, &lin, eopt));

  // Query a random item; its top-10 must contain same-category items
  // (category proximity drives both structure and semantics here).
  NodeId query = kInvalidNode;
  for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
    if (d.graph.label_name(d.graph.node_label(v)) == "item" &&
        d.graph.InDegree(v) > 3) {
      query = v;
      break;
    }
  }
  ASSERT_NE(query, kInvalidNode);
  auto top = engine.TopK(query, 10);
  ASSERT_FALSE(top.empty());
  EXPECT_GT(top[0].score, 0.0);
  const Taxonomy& tax = d.context.taxonomy();
  int same_parent = 0;
  for (const Scored& s : top) {
    if (tax.parent(d.context.concept_of(s.node)) ==
        tax.parent(d.context.concept_of(query))) {
      ++same_parent;
    }
  }
  EXPECT_GT(same_parent, 0);
}

}  // namespace
}  // namespace semsim

// Parameterized property sweeps: the paper's theorems checked across
// decay factors, measures, and random graph families — beyond the single
// fixture graphs of the per-module suites.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/iterative.h"
#include "core/pair_graph.h"
#include "core/reduced_pair_graph.h"
#include "datasets/aminer_gen.h"
#include "datasets/wordnet_gen.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::Unwrap;

// Small random HIN family with an embedded two-level taxonomy.
struct RandomWorld {
  Hin graph;
  SemanticContext context;
};

RandomWorld MakeRandomWorld(uint64_t seed, int num_entities,
                            int num_categories) {
  Rng rng(seed);
  TaxonomyBuilder tax;
  ConceptId root = tax.AddConcept("root");
  std::vector<ConceptId> cats;
  for (int c = 0; c < num_categories; ++c) {
    cats.push_back(tax.AddConcept("cat" + std::to_string(c), root));
  }
  std::vector<ConceptId> entity_concepts;
  std::vector<int> entity_cat;
  for (int e = 0; e < num_entities; ++e) {
    int cat = static_cast<int>(rng.NextIndex(cats.size()));
    entity_cat.push_back(cat);
    entity_concepts.push_back(
        tax.AddConcept("e" + std::to_string(e), cats[cat]));
  }
  Taxonomy taxonomy = Unwrap(std::move(tax).Build());

  HinBuilder hin;
  std::vector<ConceptId> node_concept;
  std::vector<NodeId> concept_node(taxonomy.num_concepts());
  for (ConceptId c = 0; c < taxonomy.num_concepts(); ++c) {
    concept_node[c] = hin.AddNode(std::string(taxonomy.name(c)), "n");
    node_concept.push_back(c);
  }
  for (ConceptId c = 0; c < taxonomy.num_concepts(); ++c) {
    if (c != taxonomy.root()) {
      SEMSIM_CHECK(hin.AddUndirectedEdge(concept_node[c],
                                         concept_node[taxonomy.parent(c)],
                                         "is_a", 1.0)
                       .ok());
    }
  }
  // Random weighted relations between entities, denser within category.
  for (int e = 0; e < num_entities; ++e) {
    int links = 1 + static_cast<int>(rng.NextIndex(3));
    for (int l = 0; l < links; ++l) {
      int other = static_cast<int>(rng.NextIndex(num_entities));
      if (other == e) continue;
      double w = 0.5 + rng.NextDouble() * 3.0;
      SEMSIM_CHECK(hin.AddUndirectedEdge(
                          concept_node[entity_concepts[e]],
                          concept_node[entity_concepts[other]], "rel", w)
                       .ok());
    }
  }
  RandomWorld world;
  world.graph = Unwrap(std::move(hin).Build());
  world.context = Unwrap(SemanticContext::FromTaxonomy(
      std::move(taxonomy), std::move(node_concept)));
  return world;
}

struct SweepCase {
  uint64_t seed;
  double decay;
};

class TheoremSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TheoremSweep, Theorem23HoldsOnRandomGraphs) {
  SweepCase param = GetParam();
  RandomWorld w = MakeRandomWorld(param.seed, 40, 5);
  LinMeasure lin(&w.context);
  size_t n = w.graph.num_nodes();
  ScoreMatrix prev =
      Unwrap(ComputeSemSim(w.graph, lin, param.decay, 1, nullptr));
  for (int k = 2; k <= 6; ++k) {
    ScoreMatrix cur =
        Unwrap(ComputeSemSim(w.graph, lin, param.decay, k, nullptr));
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_DOUBLE_EQ(cur.at(u, u), 1.0);
      for (NodeId v = 0; v < u; ++v) {
        ASSERT_DOUBLE_EQ(cur.at(u, v), cur.at(v, u));
        ASSERT_GE(cur.at(u, v) + 1e-12, prev.at(u, v));  // monotone
        ASSERT_LE(cur.at(u, v), 1.0);
        ASSERT_LE(cur.at(u, v), lin.Sim(u, v) + 1e-12);  // Prop 2.5
        ASSERT_LE(cur.at(u, v) - prev.at(u, v),
                  lin.Sim(u, v) * std::pow(param.decay, k) + 1e-12);  // 2.4
      }
    }
    prev = std::move(cur);
  }
}

TEST_P(TheoremSweep, SurferModelMatchesIterative) {
  SweepCase param = GetParam();
  RandomWorld w = MakeRandomWorld(param.seed, 25, 4);
  LinMeasure lin(&w.context);
  PairGraph pg(&w.graph, &lin);
  ScoreMatrix surfer = pg.ExactScores(param.decay, 80);
  ScoreMatrix iterative =
      Unwrap(ComputeSemSim(w.graph, lin, param.decay, 80, nullptr));
  ASSERT_LT(surfer.MaxAbsDifference(iterative), 1e-8);
}

TEST_P(TheoremSweep, ReducedGraphPreservesKeptScores) {
  SweepCase param = GetParam();
  RandomWorld w = MakeRandomWorld(param.seed, 18, 3);
  LinMeasure lin(&w.context);
  PairGraph pg(&w.graph, &lin);
  ScoreMatrix full = pg.ExactScores(param.decay, 80);
  ReducedPairGraphOptions opt;
  opt.theta = 0.5;
  opt.decay = param.decay;
  opt.max_detour = 40;
  opt.mass_cutoff = 1e-14;
  ReducedPairGraph reduced = Unwrap(ReducedPairGraph::Build(pg, opt));
  reduced.ComputeScores(80);
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
      if (reduced.IsKept(u, v)) {
        ASSERT_NEAR(reduced.Score(u, v), full.at(u, v), 1e-6)
            << "(" << u << "," << v << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDecays, TheoremSweep,
    ::testing::Values(SweepCase{1, 0.4}, SweepCase{1, 0.6},
                      SweepCase{1, 0.8}, SweepCase{2, 0.6},
                      SweepCase{3, 0.6}, SweepCase{4, 0.8},
                      SweepCase{5, 0.3}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_c" +
             std::to_string(static_cast<int>(info.param.decay * 10));
    });

// Measures beyond Lin injected into the full pipeline: Theorem 2.3 is
// measure-agnostic given the three constraints.
class MeasureSweep : public ::testing::TestWithParam<int> {};

TEST_P(MeasureSweep, IterativeInvariantsHoldForEveryMeasure) {
  RandomWorld w = MakeRandomWorld(11, 30, 4);
  std::unique_ptr<SemanticMeasure> measure;
  switch (GetParam()) {
    case 0:
      measure = std::make_unique<LinMeasure>(&w.context);
      break;
    case 1:
      measure = std::make_unique<ResnikMeasure>(&w.context);
      break;
    case 2:
      measure = std::make_unique<WuPalmerMeasure>(&w.context);
      break;
    case 3:
      measure = std::make_unique<PathMeasure>(&w.context);
      break;
    default:
      measure = std::make_unique<JiangConrathMeasure>(&w.context);
      break;
  }
  ScoreMatrix s = Unwrap(ComputeSemSim(w.graph, *measure, 0.6, 6, nullptr));
  for (NodeId u = 0; u < w.graph.num_nodes(); ++u) {
    ASSERT_DOUBLE_EQ(s.at(u, u), 1.0);
    for (NodeId v = 0; v < u; ++v) {
      ASSERT_GE(s.at(u, v), 0.0);
      ASSERT_LE(s.at(u, v), measure->Sim(u, v) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasureSweep,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace semsim

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/iterative.h"
#include "core/walk_index.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(ParallelRunner, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ParallelRunner runner(threads);
    std::vector<std::atomic<int>> hits(100);
    runner.ParallelFor(0, 100, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelRunner, EmptyRangeIsNoOp) {
  ParallelRunner runner(4);
  bool called = false;
  runner.ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRunner, MoreThreadsThanWork) {
  ParallelRunner runner(16);
  std::vector<std::atomic<int>> hits(3);
  runner.ParallelFor(0, 3, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, AutoThreadCountIsPositive) {
  ParallelRunner runner(0);
  EXPECT_GE(runner.num_threads(), 1);
}

TEST(ThreadPool, ThreadCountResolutionContract) {
  // num_threads <= 0 resolves to hardware concurrency (or 1 when the
  // runtime reports 0); positive requests are taken as-is, never
  // silently truncated.
  unsigned hw = std::thread::hardware_concurrency();
  int expected_auto = hw == 0 ? 1 : static_cast<int>(hw);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0), expected_auto);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-3), expected_auto);
  EXPECT_EQ(ThreadPool(0).num_threads(), expected_auto);
  EXPECT_EQ(ThreadPool(-1).num_threads(), expected_auto);
  for (int requested : {1, 2, 5, 16, 64}) {
    EXPECT_EQ(ThreadPool::ResolveThreadCount(requested), requested);
    EXPECT_EQ(ThreadPool(requested).num_threads(), requested);
  }
}

TEST(ThreadPool, ReusedAcrossManyCalls) {
  // The pool is persistent: many ParallelFor calls over one instance
  // must each cover their range exactly once.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(64);
    pool.ParallelFor(0, hits.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "round " << round;
  }
}

TEST(ThreadPool, SkewedWorkStillCoversRangeExactlyOnce) {
  // Dynamic chunk claiming: wildly uneven per-item cost must not lose
  // or duplicate items.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  std::atomic<long> sink{0};
  pool.ParallelFor(0, hits.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      long burn = 0;
      for (size_t j = 0; j < (i % 7 == 0 ? 200000u : 10u); ++j) burn += j;
      sink.fetch_add(burn);
      hits[i].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A chunk that re-enters the pool must not deadlock; the inner call
  // degrades to inline execution.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> outer(16);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, outer.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      outer[i].fetch_add(1);
      pool.ParallelFor(0, 4, [&](size_t ilo, size_t ihi) {
        inner_total.fetch_add(static_cast<int>(ihi - ilo));
      });
    }
  });
  for (const auto& h : outer) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(inner_total.load(), static_cast<int>(outer.size()) * 4);
}

TEST(ThreadPool, ConcurrentSubmittersSerialize) {
  // ParallelFor from several external threads at once: submissions
  // serialize internally and every range is covered exactly once.
  ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr size_t kItems = 128;
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kItems);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      pool.ParallelFor(0, kItems, [&, s](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[s][i].fetch_add(1);
      });
    });
  }
  for (auto& t : submitters) t.join();
  for (const auto& per : hits) {
    for (const auto& h : per) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelIterative, ResultsBitwiseIdenticalAcrossThreadCounts) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  IterativeOptions opt;
  opt.decay = 0.6;
  opt.max_iterations = 6;
  opt.semantic = &lin;
  opt.num_threads = 1;
  ScoreMatrix serial = Unwrap(ComputeIterativeScores(w.graph, opt));
  for (int threads : {2, 4}) {
    opt.num_threads = threads;
    ScoreMatrix parallel = Unwrap(ComputeIterativeScores(w.graph, opt));
    EXPECT_EQ(parallel.MaxAbsDifference(serial), 0.0)
        << "threads=" << threads;
  }
}

TEST(ParallelWalkIndex, WalksIdenticalAcrossThreadCounts) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 40;
  opt.walk_length = 10;
  opt.seed = 5;
  opt.num_threads = 1;
  WalkIndex serial = WalkIndex::Build(w.graph, opt);
  for (int threads : {2, 4}) {
    opt.num_threads = threads;
    WalkIndex parallel = WalkIndex::Build(w.graph, opt);
    for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
      for (int k = 0; k < opt.num_walks; ++k) {
        auto a = serial.Walk(v, k);
        auto b = parallel.Walk(v, k);
        for (int s = 0; s < opt.walk_length; ++s) {
          ASSERT_EQ(a[s], b[s]) << "threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace semsim

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/iterative.h"
#include "core/walk_index.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

TEST(ParallelRunner, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ParallelRunner runner(threads);
    std::vector<std::atomic<int>> hits(100);
    runner.ParallelFor(0, 100, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelRunner, EmptyRangeIsNoOp) {
  ParallelRunner runner(4);
  bool called = false;
  runner.ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRunner, MoreThreadsThanWork) {
  ParallelRunner runner(16);
  std::vector<std::atomic<int>> hits(3);
  runner.ParallelFor(0, 3, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, AutoThreadCountIsPositive) {
  ParallelRunner runner(0);
  EXPECT_GE(runner.num_threads(), 1);
}

TEST(ParallelIterative, ResultsBitwiseIdenticalAcrossThreadCounts) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  IterativeOptions opt;
  opt.decay = 0.6;
  opt.max_iterations = 6;
  opt.semantic = &lin;
  opt.num_threads = 1;
  ScoreMatrix serial = Unwrap(ComputeIterativeScores(w.graph, opt));
  for (int threads : {2, 4}) {
    opt.num_threads = threads;
    ScoreMatrix parallel = Unwrap(ComputeIterativeScores(w.graph, opt));
    EXPECT_EQ(parallel.MaxAbsDifference(serial), 0.0)
        << "threads=" << threads;
  }
}

TEST(ParallelWalkIndex, WalksIdenticalAcrossThreadCounts) {
  auto w = MakeSmallWorld();
  WalkIndexOptions opt;
  opt.num_walks = 40;
  opt.walk_length = 10;
  opt.seed = 5;
  opt.num_threads = 1;
  WalkIndex serial = WalkIndex::Build(w.graph, opt);
  for (int threads : {2, 4}) {
    opt.num_threads = threads;
    WalkIndex parallel = WalkIndex::Build(w.graph, opt);
    for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
      for (int k = 0; k < opt.num_walks; ++k) {
        auto a = serial.Walk(v, k);
        auto b = parallel.Walk(v, k);
        for (int s = 0; s < opt.walk_length; ++s) {
          ASSERT_EQ(a[s], b[s]) << "threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace semsim

#include "core/engine_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_engine.h"
#include "core/dynamic_walk_index.h"
#include "core/walk_index.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

WalkIndexOptions SmallWalks(uint64_t seed = 11) {
  WalkIndexOptions opt;
  opt.num_walks = 40;
  opt.walk_length = 8;
  opt.seed = seed;
  return opt;
}

TEST(EngineSnapshot, BuildDerivesArtifactsAndFingerprint) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  EngineSnapshotOptions opt;
  EngineSnapshotPtr snap = Unwrap(EngineSnapshot::Build(
      Unowned(&w.graph), Unowned<SemanticMeasure>(&lin), SmallWalks(), opt,
      /*version=*/7));

  EXPECT_EQ(snap->version(), 7u);
  EXPECT_NE(snap->fingerprint(), 0u);
  EXPECT_EQ(&snap->graph(), &w.graph);
  EXPECT_EQ(snap->walk_index().num_walks(), SmallWalks().num_walks);
  EXPECT_GT(snap->MemoryBytes(), 0u);
  // Default query options use the flat kernel on a flattenable graph.
  EXPECT_NE(snap->transition_table(), nullptr);

  // Same inputs, same fingerprint; a different sampling seed changes the
  // walk content and therefore the fingerprint.
  EngineSnapshotPtr same = Unwrap(EngineSnapshot::Build(
      Unowned(&w.graph), Unowned<SemanticMeasure>(&lin), SmallWalks(), opt,
      /*version=*/8));
  EXPECT_EQ(snap->fingerprint(), same->fingerprint());
  EngineSnapshotPtr other = Unwrap(EngineSnapshot::Build(
      Unowned(&w.graph), Unowned<SemanticMeasure>(&lin), SmallWalks(99), opt,
      /*version=*/9));
  EXPECT_NE(snap->fingerprint(), other->fingerprint());
}

TEST(EngineSnapshot, RejectsNullArtifactsAndBadCapacities) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  auto walks = std::make_shared<const WalkIndex>(
      WalkIndex::Build(w.graph, SmallWalks()));
  EngineSnapshotOptions opt;
  EXPECT_FALSE(EngineSnapshot::Create(nullptr, Unowned<SemanticMeasure>(&lin),
                                      walks, opt, 0)
                   .ok());
  EXPECT_FALSE(
      EngineSnapshot::Create(Unowned(&w.graph), nullptr, walks, opt, 0).ok());
  EXPECT_FALSE(EngineSnapshot::Create(Unowned(&w.graph),
                                      Unowned<SemanticMeasure>(&lin), nullptr,
                                      opt, 0)
                   .ok());
  EngineSnapshotOptions bad = opt;
  bad.normalizer_cache_capacity = -1;
  EXPECT_FALSE(EngineSnapshot::Create(Unowned(&w.graph),
                                      Unowned<SemanticMeasure>(&lin), walks,
                                      bad, 0)
                   .ok());
}

TEST(EngineSnapshot, InvertedIndexIsLazyIdempotentAndEagerOnRequest) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  EngineSnapshotOptions opt;
  EngineSnapshotPtr lazy = Unwrap(EngineSnapshot::Build(
      Unowned(&w.graph), Unowned<SemanticMeasure>(&lin), SmallWalks(), opt,
      0));
  EXPECT_EQ(lazy->inverted_if_built(), nullptr);
  const SingleSourceIndex& first = lazy->InvertedIndex();
  EXPECT_EQ(&first, lazy->inverted_if_built());
  EXPECT_EQ(&first, &lazy->InvertedIndex());  // idempotent

  opt.eager_single_source = true;
  EngineSnapshotPtr eager = Unwrap(EngineSnapshot::Build(
      Unowned(&w.graph), Unowned<SemanticMeasure>(&lin), SmallWalks(), opt,
      0));
  EXPECT_NE(eager->inverted_if_built(), nullptr);
}

TEST(EngineSnapshot, MappedArtifactServesBitIdenticallyToOwned) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndex built = WalkIndex::Build(w.graph, SmallWalks());
  std::string path = ::testing::TempDir() + "semsim_snapshot_mapped.widx";
  ASSERT_TRUE(built.Save(path).ok());

  EngineSnapshotOptions opt;
  EngineSnapshotPtr owned = Unwrap(EngineSnapshot::Build(
      Unowned(&w.graph), Unowned<SemanticMeasure>(&lin), SmallWalks(), opt,
      1));
  EngineSnapshotPtr mapped = Unwrap(EngineSnapshot::MapArtifact(
      Unowned(&w.graph), Unowned<SemanticMeasure>(&lin), path, opt, 2));
  ASSERT_TRUE(mapped->walk_index().mapped());

  // Identical walk content + options => identical fingerprint, and the
  // engines bound to the two snapshots agree bit for bit.
  EXPECT_EQ(owned->fingerprint(), mapped->fingerprint());
  BatchQueryEngine a = Unwrap(BatchQueryEngine::CreateFromSnapshot(owned, 1));
  BatchQueryEngine b = Unwrap(BatchQueryEngine::CreateFromSnapshot(mapped, 1));
  std::vector<NodePair> pairs = {{w.a0, w.a1}, {w.a2, w.b0}, {w.b0, w.b1}};
  std::vector<double> got_a = a.QueryBatch(pairs).values;
  std::vector<double> got_b = b.QueryBatch(pairs).values;
  ASSERT_EQ(got_a.size(), got_b.size());
  for (size_t i = 0; i < got_a.size(); ++i) EXPECT_EQ(got_a[i], got_b[i]);
  std::remove(path.c_str());
}

// Mapped -> owned promotion through the maintainer: Adopt COW-promotes
// the mapped artifact, and UpdateToSnapshot publishes the maintained
// walks as a fresh owned snapshot while the mapped-era results replay.
TEST(EngineSnapshot, AdoptedMappedIndexPublishesOwnedSnapshot) {
  auto w = MakeSmallWorld();
  LinMeasure lin(&w.context);
  WalkIndex built = WalkIndex::Build(w.graph, SmallWalks());
  std::string path = ::testing::TempDir() + "semsim_snapshot_adopt.widx";
  ASSERT_TRUE(built.Save(path).ok());
  WalkIndex mapped = Unwrap(WalkIndex::Map(path, w.graph.num_nodes()));
  DynamicWalkIndex dyn =
      Unwrap(DynamicWalkIndex::Adopt(&w.graph, std::move(mapped)));

  auto graph = std::make_shared<const Hin>(w.graph);
  auto measure = std::make_shared<const LinMeasure>(&w.context);
  EngineSnapshotOptions opt;
  EngineSnapshotPtr snap = Unwrap(dyn.UpdateToSnapshot(
      graph, {}, measure, opt, /*version=*/1));
  EXPECT_FALSE(snap->walk_index().mapped());
  EXPECT_EQ(snap->version(), 1u);

  // The published snapshot serves the same walks the artifact held.
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    auto a = built.Walk(v, 0);
    auto b = snap->walk_index().Walk(v, 0);
    for (int s = 0; s < built.walk_length(); ++s) ASSERT_EQ(a[s], b[s]);
  }
  std::remove(path.c_str());
}

// The COW seam: a snapshot exported by UpdateToSnapshot must stay
// bit-stable while the maintainer keeps resampling.
TEST(EngineSnapshot, PublishedSnapshotSurvivesFurtherUpdatesUnchanged) {
  auto w = MakeSmallWorld();
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, SmallWalks());

  auto graph = std::make_shared<const Hin>(w.graph);
  auto measure = std::make_shared<const ConstantMeasure>();
  EngineSnapshotOptions opt;
  EngineSnapshotPtr v1 = Unwrap(dyn.UpdateToSnapshot(
      graph, {}, measure, opt, /*version=*/1));
  BatchQueryEngine e1 = Unwrap(BatchQueryEngine::CreateFromSnapshot(v1, 1));
  std::vector<NodePair> pairs = {{w.a0, w.a1}, {w.a2, w.b0}, {w.b0, w.b1}};
  std::vector<double> before = e1.QueryBatch(pairs).values;
  uint64_t fp_before = v1->fingerprint();

  // Mutate the graph; the maintainer resamples onto a private copy.
  HinBuilder builder = w.graph.ToBuilder();
  ASSERT_TRUE(builder.AddUndirectedEdge(w.b1, w.a0, "rel", 1.0).ok());
  auto updated = std::make_shared<const Hin>(Unwrap(std::move(builder).Build()));
  size_t resampled = 0;
  EngineSnapshotPtr v2 = Unwrap(dyn.UpdateToSnapshot(
      updated, std::vector<NodeId>{w.b1, w.a0}, measure, opt, /*version=*/2,
      &resampled));
  EXPECT_GT(resampled, 0u);
  EXPECT_NE(v2->fingerprint(), fp_before);

  // v1 readers still see exactly the pre-update world.
  EXPECT_EQ(v1->fingerprint(), fp_before);
  std::vector<double> after = e1.QueryBatch(pairs).values;
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

// Destruction ordering under chaining: the old snapshot (and the
// artifacts only it references) must die exactly when its last reader
// releases it, never while an engine still serves from it. ASan guards
// the use-after-free half; the weak_ptr guards the leak half.
TEST(EngineSnapshot, ChainedSnapshotsDieWithTheirLastReader) {
  auto w = MakeSmallWorld();
  DynamicWalkIndex dyn = DynamicWalkIndex::Build(&w.graph, SmallWalks());
  auto graph = std::make_shared<const Hin>(w.graph);
  auto measure = std::make_shared<const ConstantMeasure>();
  EngineSnapshotOptions opt;

  EngineSnapshotPtr v1 = Unwrap(dyn.UpdateToSnapshot(
      graph, {}, measure, opt, 1));
  std::weak_ptr<const EngineSnapshot> watch = v1;
  auto engine = std::make_unique<BatchQueryEngine>(
      Unwrap(BatchQueryEngine::CreateFromSnapshot(v1, 1)));
  v1.reset();  // the engine is now the only reader
  EXPECT_FALSE(watch.expired());
  std::vector<NodePair> pairs = {{w.a0, w.b1}};
  EXPECT_EQ(engine->QueryBatch(pairs).values.size(), 1u);
  engine.reset();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace semsim

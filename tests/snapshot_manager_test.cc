#include "serving/snapshot_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/batch_engine.h"
#include "core/engine_snapshot.h"
#include "serving/query_service.h"
#include "taxonomy/semantic_measure.h"
#include "tests/test_util.h"

namespace semsim {
namespace {

using testutil::MakeSmallWorld;
using testutil::Unwrap;

WalkIndexOptions SmallWalks(uint64_t seed = 11) {
  WalkIndexOptions opt;
  opt.num_walks = 40;
  opt.walk_length = 8;
  opt.seed = seed;
  return opt;
}

struct ManagedWorld {
  testutil::SmallWorld w = MakeSmallWorld();
  ConstantMeasure measure;
  EngineSnapshotOptions opt;

  EngineSnapshotPtr Snapshot(uint64_t version, uint64_t walk_seed = 11) {
    return Unwrap(EngineSnapshot::Build(Unowned(&w.graph),
                                        Unowned<SemanticMeasure>(&measure),
                                        SmallWalks(walk_seed), opt, version));
  }
};

uint64_t Counter(const char* name) {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(SnapshotManager, PublishSwapsAtomicallyAndCountsSwaps) {
  ManagedWorld mw;
  EngineSnapshotPtr initial = mw.Snapshot(0);
  SnapshotManager manager = Unwrap(SnapshotManager::Create(initial));
  EXPECT_EQ(manager.Acquire(), initial);
  EXPECT_EQ(manager.version(), 0u);
  EXPECT_EQ(manager.swaps(), 0u);

  uint64_t swaps_before = Counter("semsim_snapshot_swaps_total");
  EngineSnapshotPtr next = mw.Snapshot(manager.NextVersion(), 22);
  ASSERT_TRUE(manager.Publish(next).ok());
  EXPECT_EQ(manager.Acquire(), next);
  EXPECT_EQ(manager.version(), next->version());
  EXPECT_EQ(manager.swaps(), 1u);
  EXPECT_EQ(Counter("semsim_snapshot_swaps_total"), swaps_before + 1);
}

TEST(SnapshotManager, RejectsNullAndNonMonotoneVersions) {
  ManagedWorld mw;
  SnapshotManager manager = Unwrap(SnapshotManager::Create(mw.Snapshot(3)));
  EXPECT_FALSE(SnapshotManager::Create(nullptr).ok());
  EXPECT_EQ(manager.Publish(nullptr).code(), StatusCode::kInvalidArgument);

  // Same version (a stale double-publish) and an older version are both
  // refused; the published snapshot is untouched.
  EngineSnapshotPtr current = manager.Acquire();
  EXPECT_EQ(manager.Publish(mw.Snapshot(3)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Publish(mw.Snapshot(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Acquire(), current);
  EXPECT_EQ(manager.swaps(), 0u);
  // NextVersion continues past the seeded version.
  EXPECT_GT(manager.NextVersion(), 3u);
}

TEST(SnapshotManager, FailpointOnThePublishSeamLeavesReadersUntouched) {
  if (!SEMSIM_FAILPOINTS) GTEST_SKIP() << "failpoints compiled out";
  ManagedWorld mw;
  SnapshotManager manager = Unwrap(SnapshotManager::Create(mw.Snapshot(0)));
  EngineSnapshotPtr current = manager.Acquire();
  uint64_t failed_before = Counter("semsim_snapshot_publish_failed_total");

  FailPoints::Global().ArmError("snapshot_manager/publish",
                                Status::Internal("injected publish failure"));
  Status st = manager.Publish(mw.Snapshot(manager.NextVersion(), 22));
  FailPoints::Global().DisarmAll();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // The swap never happened: same snapshot, same version, no swap count.
  EXPECT_EQ(manager.Acquire(), current);
  EXPECT_EQ(manager.version(), current->version());
  EXPECT_EQ(manager.swaps(), 0u);
  EXPECT_EQ(Counter("semsim_snapshot_publish_failed_total"),
            failed_before + 1);

  // The seam recovers: the next publish (fresh version id) lands.
  ASSERT_TRUE(manager.Publish(mw.Snapshot(manager.NextVersion(), 23)).ok());
  EXPECT_EQ(manager.swaps(), 1u);
}

TEST(SnapshotManager, PublishAsyncBuildsOffThreadAndPublishes) {
  ManagedWorld mw;
  SnapshotManager manager = Unwrap(SnapshotManager::Create(mw.Snapshot(0)));

  Future<Status> ok = manager.PublishAsync(
      [&]() -> Result<EngineSnapshotPtr> {
        return mw.Snapshot(manager.NextVersion(), 22);
      });
  ASSERT_TRUE(ok.Get().ok());
  EXPECT_EQ(manager.swaps(), 1u);
  EXPECT_GT(manager.version(), 0u);

  // A failing build propagates its error and publishes nothing.
  EngineSnapshotPtr current = manager.Acquire();
  Future<Status> bad = manager.PublishAsync(
      []() -> Result<EngineSnapshotPtr> {
        return Status::Internal("build exploded");
      });
  EXPECT_EQ(bad.Get().code(), StatusCode::kInternal);
  EXPECT_EQ(manager.Acquire(), current);
  EXPECT_EQ(manager.swaps(), 1u);
}

// The RCU destruction half: after a swap, the displaced snapshot lives
// exactly as long as its slowest reader and not a moment longer. ASan
// turns a premature destruction into a hard failure; the weak_ptr turns
// a leak into one.
TEST(SnapshotManager, DisplacedSnapshotDiesWithItsLastReader) {
  ManagedWorld mw;
  EngineSnapshotPtr initial = mw.Snapshot(0);
  std::weak_ptr<const EngineSnapshot> watch = initial;
  SnapshotManager manager = Unwrap(SnapshotManager::Create(initial));
  initial.reset();

  EngineSnapshotPtr reader = manager.Acquire();  // in-flight request
  ASSERT_TRUE(manager.Publish(mw.Snapshot(manager.NextVersion(), 22)).ok());
  // Swapped out, but the reader still pins it — and still serves from it.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(reader->version(), 0u);
  {
    BatchQueryEngine engine =
        Unwrap(BatchQueryEngine::CreateFromSnapshot(reader, 1));
    std::vector<NodePair> pairs = {{mw.w.a0, mw.w.b1}};
    EXPECT_EQ(engine.QueryBatch(pairs).values.size(), 1u);
  }
  reader = manager.Acquire();  // release the old, pick up the new
  EXPECT_EQ(reader->version(), 1u);
  EXPECT_TRUE(watch.expired());
}

// Swap-during-query bit-identity: queries racing a publish must each be
// served wholly by one version, and replaying any response against an
// engine bound to its reported version reproduces it bit for bit.
TEST(SnapshotManager, SwapDuringQueriesKeepsEveryResponseSingleVersion) {
  ManagedWorld mw;
  EngineSnapshotPtr v0 = mw.Snapshot(0);
  SnapshotManager manager = Unwrap(SnapshotManager::Create(v0));
  BatchQueryEngine engine = Unwrap(BatchQueryEngine::CreateFromSnapshot(v0, 2));
  QueryServiceOptions service_opt;
  service_opt.queue_capacity = 256;
  QueryService service =
      Unwrap(QueryService::Create(&engine, &manager, service_opt));

  EngineSnapshotPtr v1 = mw.Snapshot(manager.NextVersion(), 22);
  std::vector<NodePair> pairs = {{mw.w.a0, mw.w.a1}, {mw.w.a2, mw.w.b0}};

  constexpr size_t kOps = 64;
  std::vector<Future<QueryResponse>> futures(kOps);
  std::atomic<bool> go{false};
  std::thread swapper([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    ASSERT_TRUE(manager.Publish(v1).ok());
  });
  QueryRequest req;
  req.kind = QueryRequestKind::kPairs;
  req.pairs = pairs;
  for (size_t i = 0; i < kOps; ++i) {
    if (i == kOps / 4) go.store(true, std::memory_order_release);
    futures[i] = service.Submit(req);
  }
  swapper.join();

  BatchQueryEngine replay_v1 =
      Unwrap(BatchQueryEngine::CreateFromSnapshot(v1, 1));
  size_t served_v0 = 0, served_v1 = 0;
  for (size_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(futures[i].valid());
    QueryResponse resp = futures[i].Get();
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    const BatchQueryEngine* replayer = nullptr;
    if (resp.snapshot_version == 0) {
      ++served_v0;
      replayer = &engine;
    } else {
      ASSERT_EQ(resp.snapshot_version, v1->version())
          << "response reports an unpublished version";
      ++served_v1;
      replayer = &replay_v1;
    }
    std::vector<double> want = replayer->QueryBatch(pairs).values;
    ASSERT_EQ(resp.scores.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(resp.scores[j], want[j]) << "op " << i << " pair " << j;
    }
  }
  EXPECT_EQ(served_v0 + served_v1, kOps);
  service.Shutdown();
}

}  // namespace
}  // namespace semsim
